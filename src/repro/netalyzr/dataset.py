"""The collected session corpus and its §4.1-style summary statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.faults.ingest import CertificateUpload, ingest_certificate
from repro.faults.quarantine import ErrorCategory, IngestHealth, Quarantine
from repro.netalyzr.session import MeasurementSession
from repro.storage.backend import StorageBackend
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key


@dataclass(frozen=True)
class SessionUpload:
    """One session as it arrives off the wire.

    ``roots`` carries the root certificates in upload form — parsed on
    the pristine path, raw DER/PEM bytes when the transport (or the
    fault injector) mangled them. The embedded session's
    ``root_certificates`` are replaced by whatever survives validation.
    """

    session: MeasurementSession
    roots: tuple[CertificateUpload, ...]

    @classmethod
    def of(cls, session: MeasurementSession) -> "SessionUpload":
        """The pristine upload of an uncorrupted session."""
        return cls(
            session=session,
            roots=tuple(
                CertificateUpload.of(certificate)
                for certificate in session.root_certificates
            ),
        )


@dataclass
class NetalyzrDataset:
    """All collected measurement sessions.

    Two ingestion paths exist: :meth:`add` trusts its input (the clean
    simulator path), :meth:`ingest` validates a wire-form
    :class:`SessionUpload` and never raises — bad records land in
    :attr:`quarantine` and the counters in :attr:`health` track what
    happened.
    """

    sessions: list[MeasurementSession] = field(default_factory=list)
    quarantine: Quarantine = field(default_factory=Quarantine)
    health: IngestHealth = field(default_factory=IngestHealth)
    _seen_ids: set[int] = field(default_factory=set, repr=False)
    #: persistent storage backend; None keeps identity semantics.
    backend: StorageBackend | None = None
    #: store-tuple intern table: identical certificate tuples collapse to
    #: one object, so a million sessions of one firmware share one tuple
    #: instead of carrying a million 60-pointer copies. Keyed by the
    #: member certificates' ids (the members are kept alive by the
    #: interned value, so ids cannot be recycled under us).
    _store_intern: dict[tuple[int, ...], tuple[Certificate, ...]] = field(
        default_factory=dict, repr=False
    )
    #: incremental summary state, maintained by :meth:`add` so the
    #: accessors below stay O(1) however large the corpus grows — the
    #: stream engine republishes them once per snapshot cadence, where
    #: the old full-corpus scans would be O(n) per publish.
    _unique_certs: dict[tuple[int, bytes], Certificate] = field(
        default_factory=dict, repr=False
    )
    _device_tuples: set = field(default_factory=set, repr=False)
    _models: set[tuple[str, str]] = field(default_factory=set, repr=False)
    _by_manufacturer: Counter = field(default_factory=Counter, repr=False)
    _by_model: Counter = field(default_factory=Counter, repr=False)
    _total_observations: int = 0

    def __getstate__(self) -> dict:
        # The intern table keys on object ids, which do not survive a
        # round-trip through pickle (the build cache); drop it so a
        # loaded dataset can never hit a stale id.
        state = self.__dict__.copy()
        state["_store_intern"] = {}
        return state

    def add(self, session: MeasurementSession) -> None:
        """Append one trusted session."""
        if self.backend is not None:
            # Content-address the session's root certificates: the DER
            # is persisted once and every session carrying that root
            # shares the one canonical parsed instance (equality is by
            # encoded bytes, so every statistic is unchanged).
            session.root_certificates = tuple(
                self.backend.intern_certificate(certificate)
                for certificate in session.root_certificates
            )
        certificates = session.root_certificates
        intern_key = tuple(map(id, certificates))
        interned = self._store_intern.get(intern_key)
        if interned is None:
            self._store_intern[intern_key] = certificates
            # First sighting of this exact store tuple: fold its members
            # into the unique-certificate index. A repeat tuple can't
            # contribute anything new, so repeats skip the scan entirely
            # — same dict, same insertion order as a full-corpus walk.
            for certificate in certificates:
                self._unique_certs.setdefault(
                    identity_key(certificate), certificate
                )
        else:
            session.root_certificates = interned
        self._seen_ids.add(session.session_id)
        self.health.accepted_sessions += 1
        self.health.accepted_certificates += session.store_size
        self._total_observations += session.store_size
        self._device_tuples.add(session.device_tuple)
        self._models.add((session.manufacturer, session.model))
        self._by_manufacturer[session.manufacturer] += 1
        self._by_model[(session.manufacturer, session.model)] += 1
        self.sessions.append(session)

    def ingest(self, upload: SessionUpload) -> MeasurementSession | None:
        """Validate and append one wire-form upload; never raises.

        Duplicate session ids are dead-lettered whole; sessions with
        some unparseable certificates are kept, degraded, with their
        good records (graceful degradation). Returns the accepted
        session, or None when the whole upload was quarantined.
        """
        session = upload.session
        if session.session_id in self._seen_ids:
            self.quarantine.add(
                ErrorCategory.DUPLICATE_SESSION,
                f"session:{session.session_id}",
                f"session id {session.session_id} already ingested",
            )
            self.health.duplicate_sessions += 1
            return None
        kept: list[Certificate] = []
        lost = 0
        for index, cert_upload in enumerate(upload.roots):
            certificate = ingest_certificate(
                cert_upload,
                self.quarantine,
                f"session:{session.session_id}/root:{index}",
            )
            if certificate is None:
                lost += 1
            else:
                kept.append(certificate)
        session.root_certificates = tuple(kept)
        if lost:
            session.degraded = True
            self.health.degraded_sessions += 1
            self.health.quarantined_certificates += lost
        self.add(session)
        return session

    # -- §4.1 summary statistics --------------------------------------------------

    @property
    def session_count(self) -> int:
        """Total executions (the paper's 15,970)."""
        return len(self.sessions)

    @property
    def total_certificate_observations(self) -> int:
        """Total (session, root cert) observations (the paper's 2.3 M)."""
        return self._total_observations

    def unique_certificates(self) -> list[Certificate]:
        """Distinct root certificates by signature identity (the
        paper's 314), in first-observed order."""
        return list(self._unique_certs.values())

    def estimated_devices(self) -> int:
        """Lower-bound handset count from distinct device tuples (the
        paper's >= 3,835)."""
        return len(self._device_tuples)

    def distinct_models(self) -> int:
        """Distinct (manufacturer, model) pairs (the paper's 435)."""
        return len(self._models)

    # -- slicing -----------------------------------------------------------------------

    def sessions_by_manufacturer(self) -> Counter:
        """Session counts per manufacturer (Table 2, right)."""
        return Counter(self._by_manufacturer)

    def sessions_by_model(self) -> Counter:
        """Session counts per (manufacturer, model) (Table 2, left)."""
        return Counter(self._by_model)

    def rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on rooted handsets (§6's 24%)."""
        return [session for session in self.sessions if session.rooted]

    def non_rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on non-rooted handsets (the §5 analysis universe)."""
        return [session for session in self.sessions if not session.rooted]

    def sessions_for(
        self,
        *,
        manufacturer: str | None = None,
        operator: str | None = None,
        os_version: str | None = None,
    ) -> list[MeasurementSession]:
        """Filter sessions by any combination of group keys."""
        out = []
        for session in self.sessions:
            if manufacturer is not None and session.manufacturer != manufacturer:
                continue
            if operator is not None and session.operator != operator:
                continue
            if os_version is not None and session.os_version != os_version:
                continue
            out.append(session)
        return out
