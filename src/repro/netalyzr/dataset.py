"""The collected session corpus and its §4.1-style summary statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.faults.ingest import CertificateUpload, ingest_certificate
from repro.faults.quarantine import ErrorCategory, IngestHealth, Quarantine
from repro.netalyzr.session import MeasurementSession
from repro.storage.backend import StorageBackend
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key


@dataclass(frozen=True)
class SessionUpload:
    """One session as it arrives off the wire.

    ``roots`` carries the root certificates in upload form — parsed on
    the pristine path, raw DER/PEM bytes when the transport (or the
    fault injector) mangled them. The embedded session's
    ``root_certificates`` are replaced by whatever survives validation.
    """

    session: MeasurementSession
    roots: tuple[CertificateUpload, ...]

    @classmethod
    def of(cls, session: MeasurementSession) -> "SessionUpload":
        """The pristine upload of an uncorrupted session."""
        return cls(
            session=session,
            roots=tuple(
                CertificateUpload.of(certificate)
                for certificate in session.root_certificates
            ),
        )


@dataclass
class NetalyzrDataset:
    """All collected measurement sessions.

    Two ingestion paths exist: :meth:`add` trusts its input (the clean
    simulator path), :meth:`ingest` validates a wire-form
    :class:`SessionUpload` and never raises — bad records land in
    :attr:`quarantine` and the counters in :attr:`health` track what
    happened.
    """

    sessions: list[MeasurementSession] = field(default_factory=list)
    quarantine: Quarantine = field(default_factory=Quarantine)
    health: IngestHealth = field(default_factory=IngestHealth)
    _seen_ids: set[int] = field(default_factory=set, repr=False)
    #: persistent storage backend; None keeps identity semantics.
    backend: StorageBackend | None = None

    def add(self, session: MeasurementSession) -> None:
        """Append one trusted session."""
        if self.backend is not None:
            # Content-address the session's root certificates: the DER
            # is persisted once and every session carrying that root
            # shares the one canonical parsed instance (equality is by
            # encoded bytes, so every statistic is unchanged).
            session.root_certificates = tuple(
                self.backend.intern_certificate(certificate)
                for certificate in session.root_certificates
            )
        self._seen_ids.add(session.session_id)
        self.health.accepted_sessions += 1
        self.health.accepted_certificates += session.store_size
        self.sessions.append(session)

    def ingest(self, upload: SessionUpload) -> MeasurementSession | None:
        """Validate and append one wire-form upload; never raises.

        Duplicate session ids are dead-lettered whole; sessions with
        some unparseable certificates are kept, degraded, with their
        good records (graceful degradation). Returns the accepted
        session, or None when the whole upload was quarantined.
        """
        session = upload.session
        if session.session_id in self._seen_ids:
            self.quarantine.add(
                ErrorCategory.DUPLICATE_SESSION,
                f"session:{session.session_id}",
                f"session id {session.session_id} already ingested",
            )
            self.health.duplicate_sessions += 1
            return None
        kept: list[Certificate] = []
        lost = 0
        for index, cert_upload in enumerate(upload.roots):
            certificate = ingest_certificate(
                cert_upload,
                self.quarantine,
                f"session:{session.session_id}/root:{index}",
            )
            if certificate is None:
                lost += 1
            else:
                kept.append(certificate)
        session.root_certificates = tuple(kept)
        if lost:
            session.degraded = True
            self.health.degraded_sessions += 1
            self.health.quarantined_certificates += lost
        self.add(session)
        return session

    # -- §4.1 summary statistics --------------------------------------------------

    @property
    def session_count(self) -> int:
        """Total executions (the paper's 15,970)."""
        return len(self.sessions)

    @property
    def total_certificate_observations(self) -> int:
        """Total (session, root cert) observations (the paper's 2.3 M)."""
        return sum(session.store_size for session in self.sessions)

    def unique_certificates(self) -> list[Certificate]:
        """Distinct root certificates by signature identity (the
        paper's 314)."""
        seen: dict[tuple[int, bytes], Certificate] = {}
        for session in self.sessions:
            for certificate in session.root_certificates:
                seen.setdefault(identity_key(certificate), certificate)
        return list(seen.values())

    def estimated_devices(self) -> int:
        """Lower-bound handset count from distinct device tuples (the
        paper's >= 3,835)."""
        return len({session.device_tuple for session in self.sessions})

    def distinct_models(self) -> int:
        """Distinct (manufacturer, model) pairs (the paper's 435)."""
        return len({(s.manufacturer, s.model) for s in self.sessions})

    # -- slicing -----------------------------------------------------------------------

    def sessions_by_manufacturer(self) -> Counter:
        """Session counts per manufacturer (Table 2, right)."""
        return Counter(session.manufacturer for session in self.sessions)

    def sessions_by_model(self) -> Counter:
        """Session counts per (manufacturer, model) (Table 2, left)."""
        return Counter(
            (session.manufacturer, session.model) for session in self.sessions
        )

    def rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on rooted handsets (§6's 24%)."""
        return [session for session in self.sessions if session.rooted]

    def non_rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on non-rooted handsets (the §5 analysis universe)."""
        return [session for session in self.sessions if not session.rooted]

    def sessions_for(
        self,
        *,
        manufacturer: str | None = None,
        operator: str | None = None,
        os_version: str | None = None,
    ) -> list[MeasurementSession]:
        """Filter sessions by any combination of group keys."""
        out = []
        for session in self.sessions:
            if manufacturer is not None and session.manufacturer != manufacturer:
                continue
            if operator is not None and session.operator != operator:
                continue
            if os_version is not None and session.os_version != os_version:
                continue
            out.append(session)
        return out
