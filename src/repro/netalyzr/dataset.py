"""The collected session corpus and its §4.1-style summary statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.netalyzr.session import MeasurementSession
from repro.x509.certificate import Certificate
from repro.x509.fingerprint import identity_key


@dataclass
class NetalyzrDataset:
    """All collected measurement sessions."""

    sessions: list[MeasurementSession] = field(default_factory=list)

    def add(self, session: MeasurementSession) -> None:
        """Append one session."""
        self.sessions.append(session)

    # -- §4.1 summary statistics --------------------------------------------------

    @property
    def session_count(self) -> int:
        """Total executions (the paper's 15,970)."""
        return len(self.sessions)

    @property
    def total_certificate_observations(self) -> int:
        """Total (session, root cert) observations (the paper's 2.3 M)."""
        return sum(session.store_size for session in self.sessions)

    def unique_certificates(self) -> list[Certificate]:
        """Distinct root certificates by signature identity (the
        paper's 314)."""
        seen: dict[tuple[int, bytes], Certificate] = {}
        for session in self.sessions:
            for certificate in session.root_certificates:
                seen.setdefault(identity_key(certificate), certificate)
        return list(seen.values())

    def estimated_devices(self) -> int:
        """Lower-bound handset count from distinct device tuples (the
        paper's >= 3,835)."""
        return len({session.device_tuple for session in self.sessions})

    def distinct_models(self) -> int:
        """Distinct (manufacturer, model) pairs (the paper's 435)."""
        return len({(s.manufacturer, s.model) for s in self.sessions})

    # -- slicing -----------------------------------------------------------------------

    def sessions_by_manufacturer(self) -> Counter:
        """Session counts per manufacturer (Table 2, right)."""
        return Counter(session.manufacturer for session in self.sessions)

    def sessions_by_model(self) -> Counter:
        """Session counts per (manufacturer, model) (Table 2, left)."""
        return Counter(
            (session.manufacturer, session.model) for session in self.sessions
        )

    def rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on rooted handsets (§6's 24%)."""
        return [session for session in self.sessions if session.rooted]

    def non_rooted_sessions(self) -> list[MeasurementSession]:
        """Sessions on non-rooted handsets (the §5 analysis universe)."""
        return [session for session in self.sessions if not session.rooted]

    def sessions_for(
        self,
        *,
        manufacturer: str | None = None,
        operator: str | None = None,
        os_version: str | None = None,
    ) -> list[MeasurementSession]:
        """Filter sessions by any combination of group keys."""
        out = []
        for session in self.sessions:
            if manufacturer is not None and session.manufacturer != manufacturer:
                continue
            if operator is not None and session.operator != operator:
                continue
            if os_version is not None and session.os_version != os_version:
                continue
            out.append(session)
        return out
