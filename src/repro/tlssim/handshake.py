"""The simulated TLS handshake: server presents a chain, client verdicts.

The client models Android's default validation plus optional app-level
pinning. When a proxy sits on the path (the §7 scenario), the chain the
client receives is whatever the proxy re-generated, which is exactly the
observable Netalyzr records.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.rootstore.factory import STUDY_NOW
from repro.rootstore.store import RootStore
from repro.tlssim.pinning import PinStore
from repro.tlssim.traffic import ServerIdentity
from repro.tlssim.trustmanager import TrustProfile
from repro.x509.certificate import Certificate
from repro.x509.chain import ChainVerifier, ValidationResult


class TransientProbeError(ConnectionError):
    """The handshake died before completing — a retryable network fault.

    Models the flaky-radio failures of real handsets (mid-handshake
    signal loss, carrier NAT timeouts): nothing is wrong with either
    endpoint, so callers should retry with bounded backoff.
    """

    def __init__(self, host: str, port: int, attempt: int):
        super().__init__(
            f"transient handshake failure to {host}:{port} (attempt {attempt + 1})"
        )
        self.host = host
        self.port = port
        self.attempt = attempt


@dataclass(frozen=True)
class HandshakeResult:
    """What the client learned from one connection attempt."""

    host: str
    port: int
    presented_chain: tuple[Certificate, ...]
    validation: ValidationResult
    pin_ok: bool
    intercepted: bool  # ground truth, for the simulator's bookkeeping

    @property
    def trusted(self) -> bool:
        """The app-level verdict: chain valid and pins satisfied."""
        return self.validation.trusted and self.pin_ok


class TlsServer:
    """A server endpoint holding its identity."""

    def __init__(self, host: str, port: int, identity: ServerIdentity):
        self.host = host
        self.port = port
        self.identity = identity

    def present_chain(self) -> tuple[Certificate, ...]:
        """The certificate chain sent in the ServerHello."""
        return self.identity.chain


class TlsClient:
    """A client with a root store, optional pins and optional proxy path.

    ``proxy`` models the network path: if set, every connection is
    offered to the proxy first, which may substitute its own chain.
    ``trust_profile`` models a broken app-level TrustManager
    (:mod:`repro.tlssim.trustmanager`): the platform verdicts are
    computed as usual, then overridden by the profile — exactly how a
    vulnerable app layers over the platform APIs.
    """

    def __init__(
        self,
        store: RootStore,
        *,
        pins: PinStore | None = None,
        proxy=None,
        trust_profile: TrustProfile | None = None,
        at: datetime.datetime = STUDY_NOW,
    ):
        self.store = store
        self.pins = pins or PinStore()
        self.proxy = proxy
        self.trust_profile = trust_profile
        self.at = at

    def connect(
        self, server: TlsServer, *, attempt: int = 0, fail_transiently: bool = False
    ) -> HandshakeResult:
        """Run one handshake and validate what arrives.

        ``fail_transiently`` simulates the network dropping this attempt
        (fault injection); the client raises
        :class:`TransientProbeError` before any bytes are validated.
        """
        if fail_transiently:
            raise TransientProbeError(server.host, server.port, attempt)
        chain = server.present_chain()
        intercepted = False
        if self.proxy is not None:
            chain, intercepted = self.proxy.relay(server.host, server.port, chain)
        verifier = ChainVerifier(self.store.certificates(), at=self.at)
        validation = verifier.validate(list(chain), hostname=server.host)
        pin_ok = self.pins.check(server.host, chain)
        if self.trust_profile is not None:
            validation, pin_ok = self.trust_profile.apply(
                validation, pin_ok, server.host
            )
        return HandshakeResult(
            host=server.host,
            port=server.port,
            presented_chain=tuple(chain),
            validation=validation,
            pin_ok=pin_ok,
            intercepted=intercepted,
        )
