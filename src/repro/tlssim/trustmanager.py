"""Vulnerable app trust managers ("Danger is My Middle Name" profiles).

Real Android apps frequently replace the platform ``TrustManager`` /
``HostnameVerifier`` with broken implementations. A
:class:`TrustProfile` models one such app-level validation policy as a
pure override applied *after* the platform verdicts are computed: the
platform still records what a correct client would have concluded, the
profile only changes what the app *accepts*. Three canonical broken
profiles ship here:

* ``accept-all`` — a TrustManager whose ``checkServerTrusted`` body is
  empty: every chain is accepted, valid or not;
* ``hostname-skip`` — chain validation is intact but the hostname
  verifier always returns true, so a valid-for-anything certificate is
  accepted for any host;
* ``pin-but-whitelist`` — the app ships pinning code but routes every
  host through a bypass whitelist, so the pin check never actually
  rejects (the anti-pattern the scenario engine's no-whitelist proxies
  exploit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x509.chain import ValidationFailure, ValidationResult

#: Wildcard entry accepted in :attr:`TrustProfile.pin_bypass_hosts`.
PIN_BYPASS_ANY = "*"


@dataclass(frozen=True)
class TrustProfile:
    """One app-level validation policy, applied over platform verdicts."""

    name: str
    #: empty checkServerTrusted: every chain is accepted.
    accept_all_chains: bool = False
    #: ALLOW_ALL_HOSTNAME_VERIFIER: hostname mismatches are forgiven.
    skip_hostname_verification: bool = False
    #: hosts whose pin failures are waved through (``*`` = every host).
    pin_bypass_hosts: frozenset[str] = frozenset()

    def bypasses_pin(self, host: str) -> bool:
        """True when a failed pin check is ignored for this host."""
        return (
            PIN_BYPASS_ANY in self.pin_bypass_hosts
            or host.lower() in self.pin_bypass_hosts
        )

    def apply(
        self, validation: ValidationResult, pin_ok: bool, host: str
    ) -> tuple[ValidationResult, bool]:
        """The app's verdicts given the platform's.

        Returns a (validation, pin_ok) pair; untouched inputs are
        returned as-is so a correct profile is a no-op.
        """
        if not validation.trusted:
            if self.accept_all_chains:
                validation = ValidationResult(
                    trusted=True,
                    path=validation.path,
                    anchor=validation.anchor,
                    detail="accepted by permissive trust manager",
                )
            elif (
                self.skip_hostname_verification
                and validation.failure is ValidationFailure.HOSTNAME_MISMATCH
            ):
                validation = ValidationResult(
                    trusted=True,
                    path=validation.path,
                    anchor=validation.anchor,
                    detail="hostname verification skipped",
                )
        if not pin_ok and self.bypasses_pin(host):
            pin_ok = True
        return validation, pin_ok


#: The named profiles the scenario engine can install.
TRUST_PROFILES: dict[str, TrustProfile] = {
    "accept-all": TrustProfile(name="accept-all", accept_all_chains=True),
    "hostname-skip": TrustProfile(
        name="hostname-skip", skip_hostname_verification=True
    ),
    "pin-but-whitelist": TrustProfile(
        name="pin-but-whitelist", pin_bypass_hosts=frozenset({PIN_BYPASS_ANY})
    ),
}
