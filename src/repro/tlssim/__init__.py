"""In-process TLS world: endpoints, traffic, handshakes, pinning, MITM.

No sockets are involved — a "handshake" is the exchange of a certificate
chain and its validation against the client's root store, which is the
only part of TLS the paper's measurements concern.
"""

from repro.tlssim.endpoints import (
    INTERCEPTED_DOMAINS,
    PROBE_TARGETS,
    WHITELISTED_DOMAINS,
    Endpoint,
)
from repro.tlssim.pinning import PinStore, default_pin_store
from repro.tlssim.traffic import TlsTrafficGenerator, ServerIdentity
from repro.tlssim.handshake import (
    HandshakeResult,
    TlsClient,
    TlsServer,
    TransientProbeError,
)
from repro.tlssim.proxy import InterceptionProxy
from repro.tlssim.trustmanager import TRUST_PROFILES, TrustProfile

__all__ = [
    "Endpoint",
    "PROBE_TARGETS",
    "INTERCEPTED_DOMAINS",
    "WHITELISTED_DOMAINS",
    "PinStore",
    "default_pin_store",
    "TlsTrafficGenerator",
    "ServerIdentity",
    "HandshakeResult",
    "TlsClient",
    "TlsServer",
    "TransientProbeError",
    "InterceptionProxy",
    "TrustProfile",
    "TRUST_PROFILES",
]
