"""The popular-domain catalog Netalyzr probes, including Table 6's lists.

Each endpoint names the CA that legitimately issues its certificate, so
probe chains are reproducible and the interception detector has a
stable notion of "expected issuer".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Endpoint:
    """A (host, port) TLS endpoint with its legitimate issuing CA."""

    host: str
    port: int
    issuer_ca: str  # catalog CA name that signs the real certificate
    pinned: bool = False  # app-level certificate pinning (§7)

    @property
    def hostport(self) -> str:
        """``host:port`` as rendered in Table 6."""
        return f"{self.host}:{self.port}"


#: A core-catalog CA used as the default issuer for big-web properties.
_BIG_WEB_CA = "VeriSign Class 3 Root"
_MAIL_CA = "Thawte Root CA"
_BANK_CA = "Entrust Root CA"
_CDN_CA = "GlobalSign Root CA"

#: Table 6, left column: domains the Reality Mine proxy intercepts.
INTERCEPTED_DOMAINS: tuple[Endpoint, ...] = (
    Endpoint("gmail.com", 443, _MAIL_CA),
    Endpoint("mail.google.com", 443, _MAIL_CA),
    Endpoint("mail.yahoo.com", 443, _MAIL_CA),
    Endpoint("orcart.facebook.com", 443, _CDN_CA),
    Endpoint("www.bankofamerica.com", 443, _BANK_CA),
    Endpoint("www.chase.com", 443, _BANK_CA),
    Endpoint("www.hsbc.com", 443, _BANK_CA),
    Endpoint("www.icsi.berkeley.edu", 443, _BIG_WEB_CA),
    Endpoint("www.outlook.com", 443, _MAIL_CA),
    Endpoint("www.skype.com", 443, _BIG_WEB_CA),
    Endpoint("www.viber.com", 443, _BIG_WEB_CA),
    Endpoint("www.yahoo.com", 443, _BIG_WEB_CA),
)

#: Table 6, right column: domains the proxy passes through untouched
#: (pinned apps and special-protocol services).
WHITELISTED_DOMAINS: tuple[Endpoint, ...] = (
    Endpoint("google-analytics.com", 443, _CDN_CA),
    Endpoint("maps.google.com", 443, _CDN_CA, pinned=True),
    Endpoint("orcart.facebook.com", 8883, _CDN_CA, pinned=True),  # MQTT chat
    Endpoint("play.google.com", 443, _CDN_CA, pinned=True),
    Endpoint("supl.google.com", 7275, _CDN_CA),  # SUPL location service
    Endpoint("www.facebook.com", 443, _CDN_CA, pinned=True),
    Endpoint("www.google.com", 443, _CDN_CA, pinned=True),
    Endpoint("www.google.co.uk", 443, _CDN_CA, pinned=True),
    Endpoint("www.twitter.com", 443, _BIG_WEB_CA, pinned=True),
)

#: The full probe set Netalyzr checks on every session (§4: "the full
#: trust chain for a collection of popular domains and mobile-services").
PROBE_TARGETS: tuple[Endpoint, ...] = tuple(
    sorted(
        {e.hostport: e for e in INTERCEPTED_DOMAINS + WHITELISTED_DOMAINS}.values(),
        key=lambda e: e.hostport,
    )
)


def endpoint_for(hostport: str) -> Endpoint:
    """Look up a probe endpoint by ``host:port``."""
    for endpoint in PROBE_TARGETS:
        if endpoint.hostport == hostport:
            return endpoint
    raise KeyError(hostport)
