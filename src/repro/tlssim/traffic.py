"""Synthetic TLS traffic: the leaf-certificate population the Notary sees.

Each catalog CA profile declares how many current and expired leaf
certificates it signs (calibrated in :mod:`repro.rootstore.catalog`);
this module materializes those leaves as real signed certificates. Leaf
keypairs are drawn from a small shared pool — key reuse does not affect
any validation statistic and keeps generation fast.

Leaf building is split into *planning* (cheap: resolve the signer,
enumerate hosts/serials — runs serially in the parent and consumes no
RNG beyond the memoized keys) and *materialization* (expensive: sign
and encode each leaf — a pure function of its plan). The split lets
:func:`materialize_plans` fan materialization out across a
:class:`~repro.parallel.executor.ParallelExecutor` while producing
byte-identical leaves in plan order at any worker count.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.crypto.rng import derive_random
from repro.crypto.rsa import DEFAULT_KEY_BITS, RsaKeyPair, generate_keypair
from repro.parallel.executor import ParallelExecutor
from repro.rootstore.catalog import CaCatalog, CaProfile, default_catalog
from repro.rootstore.factory import (
    STUDY_NOW,
    CertificateFactory,
    KeySpec,
    generate_keypairs,
)
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.name import Name

#: Validity for current leaves (straddling the study window).
_CURRENT_NOT_BEFORE = datetime.datetime(2013, 1, 1)
_CURRENT_NOT_AFTER = datetime.datetime(2015, 6, 1)

#: Validity for expired leaves (historical traffic).
_EXPIRED_NOT_BEFORE = datetime.datetime(2010, 1, 1)
_EXPIRED_NOT_AFTER = datetime.datetime(2012, 6, 1)

#: Size of the shared leaf keypair pool.
_LEAF_KEY_POOL = 40

#: CAs signing at least this many current leaves issue through an
#: intermediate (the operational practice of large public CAs).
_INTERMEDIATE_THRESHOLD = 20


@dataclass(frozen=True)
class ObservedLeaf:
    """One leaf certificate as the Notary records it.

    ``session_count`` carries the traffic-volume dimension (the real
    Notary logged 66 B sessions over 1.9 M certificates): popular
    leaves are seen in many sessions, tail leaves in one.
    """

    certificate: Certificate
    issuer_name: str  # catalog CA name
    expired: bool
    session_count: int = 1
    #: Intermediates between the leaf and the root (big public CAs issue
    #: through an intermediate, as on the real web).
    intermediates: tuple[Certificate, ...] = ()

    @property
    def host(self) -> str:
        """The hostname the leaf was issued for."""
        return self.certificate.subject.common_name or ""


@dataclass(frozen=True)
class ServerIdentity:
    """A server's credentials: its chain (leaf first) and private key."""

    chain: tuple[Certificate, ...]
    keypair: RsaKeyPair

    @property
    def leaf(self) -> Certificate:
        """The end-entity certificate."""
        return self.chain[0]


def _slug(name: str) -> str:
    """A DNS-safe (ASCII) slug for a CA name."""
    ascii_name = name.encode("ascii", errors="replace").decode("ascii")
    return "".join(
        ch if ch.isalnum() else "-" for ch in ascii_name.lower()
    )[:40].strip("-")


@dataclass(frozen=True)
class LeafPlan:
    """Everything needed to materialize one leaf, resolved up front.

    Plans hold the signer key and subject directly so materialization
    never touches the generator's mutable caches — a plan's output is a
    pure function of the plan.
    """

    profile: CaProfile
    signer_keypair: RsaKeyPair
    signer_subject: Name
    intermediates: tuple[Certificate, ...]
    host: str
    serial: int
    expired: bool
    session_count: int


def _materialize_chunk(payload: object, chunk: range) -> list["ObservedLeaf"]:
    """Worker chunk fn: materialize one span of leaf plans."""
    generator, plans = payload
    return [generator.materialize(plans[index]) for index in chunk]


def materialize_plans(
    generator: "TlsTrafficGenerator",
    plans: Sequence[LeafPlan],
    executor: ParallelExecutor | None,
) -> list["ObservedLeaf"]:
    """Materialize *plans* across *executor*, in plan order.

    Each plan is materialized independently (no RNG, no shared mutable
    state), so the output is byte-identical at any worker count. Call
    :meth:`TlsTrafficGenerator.warm` first — forked workers inherit the
    warmed key pool through copy-on-write instead of each regenerating
    it.
    """
    if executor is None:
        executor = ParallelExecutor()
    return executor.map_chunked(
        _materialize_chunk, (generator, list(plans)), len(plans)
    )


class TlsTrafficGenerator:
    """Materializes the calibrated leaf population and server identities."""

    def __init__(
        self,
        factory: CertificateFactory | None = None,
        catalog: CaCatalog | None = None,
        *,
        scale: float = 1.0,
    ):
        self.factory = factory or CertificateFactory()
        self.catalog = catalog or default_catalog()
        # >1 oversamples the calibrated population (stress/benchmark
        # runs); the per-profile leaf mix keeps its proportions.
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self._key_pool: list[RsaKeyPair] = []
        self._intermediates: dict[str, tuple[Certificate, RsaKeyPair]] = {}
        #: keys pre-generated by :meth:`warm`, consumed by
        #: :meth:`intermediate_for` instead of generating inline.
        self._warm_intermediate_keys: dict[str, RsaKeyPair] = {}
        #: ditto for :meth:`server_identity` (per probe-target host).
        self._warm_server_keys: dict[str, RsaKeyPair] = {}

    # -- keys -------------------------------------------------------------------

    def _leaf_keypair(self, index: int) -> RsaKeyPair:
        """A keypair from the shared leaf pool."""
        if not self._key_pool:
            self._key_pool = [
                generate_keypair(derive_random(self.factory.seed, "leaf-key", i))
                for i in range(_LEAF_KEY_POOL)
            ]
        return self._key_pool[index % _LEAF_KEY_POOL]

    def warm(self, executor: ParallelExecutor) -> None:
        """Pre-generate every keypair the population needs, in parallel.

        Covers the CA keys (via the factory), the issuing-intermediate
        keys of big CAs, and the shared leaf pool. Each key lives in its
        own derived RNG stream, so warmed keys are identical to the ones
        the lazy paths would generate.
        """
        profiles = list(self.catalog.all_profiles())
        self.factory.warm((profile.name for profile in profiles), executor)
        specs: list[KeySpec] = []
        targets: list[tuple[str, object]] = []
        if not self._key_pool:
            for index in range(_LEAF_KEY_POOL):
                specs.append((("leaf-key", index), DEFAULT_KEY_BITS))
                targets.append(("pool", index))
        for profile in profiles:
            if (
                profile.current_leaves >= _INTERMEDIATE_THRESHOLD
                and profile.name not in self._intermediates
                and profile.name not in self._warm_intermediate_keys
            ):
                specs.append(
                    (("intermediate-key", profile.name), DEFAULT_KEY_BITS)
                )
                targets.append(("intermediate", profile.name))
        if not specs:
            return
        pool: list[RsaKeyPair] = [None] * _LEAF_KEY_POOL if not self._key_pool else []
        for (kind, key), keypair in zip(
            targets, generate_keypairs(self.factory.seed, specs, executor)
        ):
            if kind == "pool":
                pool[key] = keypair
            else:
                self._warm_intermediate_keys[key] = keypair
        if pool:
            self._key_pool = pool

    def warm_server_keys(
        self, hosts: Sequence[str], executor: ParallelExecutor
    ) -> None:
        """Pre-generate the probe-target server keys, in parallel."""
        missing = [host for host in hosts if host not in self._warm_server_keys]
        specs: list[KeySpec] = [
            (("server-key", host), DEFAULT_KEY_BITS) for host in missing
        ]
        for host, keypair in zip(
            missing, generate_keypairs(self.factory.seed, specs, executor)
        ):
            self._warm_server_keys[host] = keypair

    def _scaled(self, count: int) -> int:
        """Apply the scale factor, keeping small non-zero counts alive.

        Rounding up preserves the *presence* of small-delta roots (a root
        signing 3 leaves at full scale still signs ≥1 at scale 0.1),
        which is what Table 3's orderings depend on.
        """
        if count == 0:
            return 0
        scaled = int(count * self.scale)
        return max(scaled, 1)

    # -- leaf population ------------------------------------------------------------

    def intermediate_for(self, profile: CaProfile) -> tuple[Certificate, RsaKeyPair] | None:
        """The issuing intermediate for a big CA, or None for small CAs."""
        if profile.current_leaves < _INTERMEDIATE_THRESHOLD:
            return None
        if profile.name not in self._intermediates:
            root_keypair = self.factory.keypair_for(profile.name)
            keypair = self._warm_intermediate_keys.pop(
                profile.name, None
            ) or generate_keypair(
                derive_random(self.factory.seed, "intermediate-key", profile.name)
            )
            certificate = (
                CertificateBuilder()
                .subject(
                    Name.build(
                        CN=f"{profile.name} Issuing CA G2",
                        O=profile.name.split(" ")[0] or profile.name,
                    )
                )
                .issuer(self.factory.subject_for(profile))
                .public_key(keypair.public)
                .serial_number(1_000_001)
                .validity(_CURRENT_NOT_BEFORE, datetime.datetime(2026, 1, 1))
                .ca(True, path_length=0)
                .sign(root_keypair.private, issuer_public_key=root_keypair.public)
            )
            self._intermediates[profile.name] = (certificate, keypair)
        return self._intermediates[profile.name]

    def plans_for_profile(self, profile: CaProfile) -> Iterator[LeafPlan]:
        """The leaf plans of one CA profile, in canonical order.

        Resolves the signer (materializing the intermediate if the CA
        operates one) in the calling process; the yielded plans are then
        safe to materialize anywhere.
        """
        intermediate = self.intermediate_for(profile)
        if intermediate is None:
            signer_keypair = self.factory.keypair_for(profile.name)
            signer_subject = self.factory.subject_for(profile)
            intermediates: tuple[Certificate, ...] = ()
        else:
            signer_keypair = intermediate[1]
            signer_subject = intermediate[0].subject
            intermediates = (intermediate[0],)
        slug = _slug(profile.name)
        current = self._scaled(profile.current_leaves)
        for index in range(current):
            yield LeafPlan(
                profile, signer_keypair, signer_subject, intermediates,
                host=f"www{index}.{slug}.example",
                serial=2_000_000 + index,
                expired=False,
                # Within a CA, leaf popularity is itself skewed: the
                # CA's flagship customers dominate its session volume.
                session_count=max(1, current * 10 // (index + 1)),
            )
        for index in range(self._scaled(profile.expired_leaves)):
            yield LeafPlan(
                profile, signer_keypair, signer_subject, intermediates,
                host=f"old{index}.{slug}.example",
                serial=3_000_000 + index,
                expired=True,
                session_count=1,
            )

    def leaves_for_profile(self, profile: CaProfile) -> Iterator[ObservedLeaf]:
        """All leaves signed by one CA profile (via its intermediate when
        the CA is big enough to operate one)."""
        for plan in self.plans_for_profile(profile):
            yield self.materialize(plan)

    def materialize(self, plan: LeafPlan) -> ObservedLeaf:
        """Sign and encode the leaf a plan describes."""
        keypair = self._leaf_keypair(plan.serial)
        not_before = _EXPIRED_NOT_BEFORE if plan.expired else _CURRENT_NOT_BEFORE
        not_after = _EXPIRED_NOT_AFTER if plan.expired else _CURRENT_NOT_AFTER
        certificate = (
            CertificateBuilder()
            .subject(Name.build(CN=plan.host, O=plan.profile.name))
            .issuer(plan.signer_subject)
            .public_key(keypair.public)
            .serial_number(plan.serial)
            .validity(not_before, not_after)
            .tls_server(plan.host)
            .sign(
                plan.signer_keypair.private,
                issuer_public_key=plan.signer_keypair.public,
            )
        )
        return ObservedLeaf(
            certificate=certificate,
            issuer_name=plan.profile.name,
            expired=plan.expired,
            session_count=plan.session_count,
            intermediates=plan.intermediates,
        )

    def generate_population(
        self, executor: ParallelExecutor | None = None
    ) -> list[ObservedLeaf]:
        """The full calibrated leaf population (all CA groups)."""
        if executor is not None:
            self.warm(executor)
            plans = [
                plan
                for profile in self.catalog.all_profiles()
                for plan in self.plans_for_profile(profile)
            ]
            return materialize_plans(self, plans, executor)
        leaves: list[ObservedLeaf] = []
        for profile in self.catalog.all_profiles():
            leaves.extend(self.leaves_for_profile(profile))
        return leaves

    # -- server identities for the probe targets -----------------------------------

    def server_identity(self, host: str, issuer_ca: str) -> ServerIdentity:
        """The legitimate credentials for a probe-target host.

        The chain is leaf -> issuing root (probe targets use a direct
        chain; intermediates appear in the interception scenario, where
        the proxy mints them on the fly).
        """
        profile = self.catalog.by_name(issuer_ca)
        ca_keypair = self.factory.keypair_for(profile.name)
        keypair = self._warm_server_keys.pop(host, None) or generate_keypair(
            derive_random(self.factory.seed, "server-key", host)
        )
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN=host, O=host))
            .issuer(self.factory.subject_for(profile))
            .public_key(keypair.public)
            .serial_number(abs(hash(host)) % 2**63 + 1)
            .validity(_CURRENT_NOT_BEFORE, _CURRENT_NOT_AFTER)
            .tls_server(host)
            .sign(ca_keypair.private, issuer_public_key=ca_keypair.public)
        )
        root = self.factory.root_certificate(profile)
        return ServerIdentity(chain=(leaf, root), keypair=keypair)


def study_now() -> datetime.datetime:
    """The study's reference time (re-exported for convenience)."""
    return STUDY_NOW
