"""Certificate pinning, as deployed by the apps §7's proxy must bypass.

A pin set binds a hostname to the public keys its app will accept. A
pinned connection through an interception proxy fails even though the
proxy's root is in the device store — which is why the Reality Mine
proxy whitelists Facebook, Twitter and Google domains (Table 6).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.x509.certificate import Certificate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tlssim.traffic import TlsTrafficGenerator


def spki_pin(certificate: Certificate) -> str:
    """The pin for a certificate: SHA-256 over its public-key DER
    (the HPKP/Android-pinning construction)."""
    return hashlib.sha256(certificate.public_key.to_der()).hexdigest()


@dataclass
class PinStore:
    """Hostname -> accepted SPKI pins."""

    pins: dict[str, set[str]] = field(default_factory=dict)

    def pin(self, hostname: str, certificate: Certificate) -> None:
        """Pin a certificate's key for a hostname."""
        self.pins.setdefault(hostname.lower(), set()).add(spki_pin(certificate))

    def is_pinned(self, hostname: str) -> bool:
        """True if the app pins this hostname."""
        return hostname.lower() in self.pins

    def check(self, hostname: str, chain: tuple[Certificate, ...]) -> bool:
        """Pin validation: some certificate in the chain must carry a
        pinned key. Unpinned hostnames always pass."""
        accepted = self.pins.get(hostname.lower())
        if accepted is None:
            return True
        return any(spki_pin(certificate) in accepted for certificate in chain)


def default_pin_store(traffic: TlsTrafficGenerator) -> PinStore:
    """Build the pin store for the pinned probe targets.

    Pins each pinned endpoint's legitimate issuing root, mirroring how
    the Facebook/Twitter/Google apps pin their CAs.
    """
    from repro.tlssim.endpoints import PROBE_TARGETS

    store = PinStore()
    for endpoint in PROBE_TARGETS:
        if endpoint.pinned:
            identity = traffic.server_identity(endpoint.host, endpoint.issuer_ca)
            store.pin(endpoint.host, identity.chain[-1])
    return store
