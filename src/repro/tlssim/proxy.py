"""The TLS interception proxy of §7 (the Reality Mine model).

The proxy terminates TLS for intercepted domains and re-generates both a
root and an intermediate certificate on the fly, minting a fresh leaf
for the requested hostname — exactly the chain shape Netalyzr observed.
Whitelisted domains (pinned apps, SUPL, Facebook chat) are relayed
untouched. The proxy listens on ports 80 and 443 only; other ports pass
through.
"""

from __future__ import annotations

import datetime

from repro.crypto.rng import derive_random
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.name import Name

#: Ports the proxy intercepts (§7: "listens on ports 80 and 443").
INTERCEPTED_PORTS = frozenset({80, 443})

_NOT_BEFORE = datetime.datetime(2013, 6, 1)
_NOT_AFTER = datetime.datetime(2016, 6, 1)


class InterceptionProxy:
    """An on-path HTTPS proxy that re-signs traffic for profiling.

    ``operator_name`` brands the generated certificates (the paper's
    instance was "Reality Mine", proxying via
    ``v-us-49.analyzeme.me.uk``).
    """

    def __init__(
        self,
        operator_name: str = "Reality Mine",
        proxy_host: str = "v-us-49.analyzeme.me.uk",
        whitelist: frozenset[str] = frozenset(),
        seed: str = "interception-proxy",
    ):
        self.operator_name = operator_name
        self.proxy_host = proxy_host
        #: Whitelist entries are ``host:port`` — the paper's proxy
        #: intercepts orcart.facebook.com:443 while whitelisting the
        #: same host's MQTT port 8883 (Table 6).
        self.whitelist = {entry.lower() for entry in whitelist}
        self.seed = seed
        self._root_keypair: RsaKeyPair | None = None
        self._root: Certificate | None = None
        self._intermediate_keypair: RsaKeyPair | None = None
        self._intermediate: Certificate | None = None
        self._leaf_cache: dict[str, tuple[Certificate, ...]] = {}
        #: Log of (host, port, intercepted) decisions, for analysis.
        self.decisions: list[tuple[str, int, bool]] = []

    # -- the proxy's own PKI, minted lazily ------------------------------------

    @property
    def root_certificate(self) -> Certificate:
        """The proxy's root CA (regenerated per proxy instance)."""
        if self._root is None:
            self._root_keypair = generate_keypair(
                derive_random(self.seed, "proxy-root")
            )
            self._root = (
                CertificateBuilder()
                .subject(
                    Name.build(
                        CN=f"{self.operator_name} Root CA",
                        O=self.operator_name,
                        C="GB",
                    )
                )
                .public_key(self._root_keypair.public)
                .serial_number(1)
                .validity(_NOT_BEFORE, _NOT_AFTER)
                .ca(True)
                .self_sign(self._root_keypair.private)
            )
        return self._root

    @property
    def intermediate_certificate(self) -> Certificate:
        """The proxy's intermediate CA (also minted on the fly, §7)."""
        if self._intermediate is None:
            root = self.root_certificate  # ensures root keypair exists
            self._intermediate_keypair = generate_keypair(
                derive_random(self.seed, "proxy-intermediate")
            )
            self._intermediate = (
                CertificateBuilder()
                .subject(
                    Name.build(
                        CN=f"{self.operator_name} Issuing CA",
                        O=self.operator_name,
                        C="GB",
                    )
                )
                .issuer(root.subject)
                .public_key(self._intermediate_keypair.public)
                .serial_number(2)
                .validity(_NOT_BEFORE, _NOT_AFTER)
                .ca(True, path_length=0)
                .sign(self._root_keypair.private, issuer_public_key=self._root_keypair.public)
            )
        return self._intermediate

    # -- interception logic -----------------------------------------------------------

    def should_intercept(self, host: str, port: int) -> bool:
        """Interception policy: in-scope port and not whitelisted."""
        if port not in INTERCEPTED_PORTS:
            return False
        return f"{host.lower()}:{port}" not in self.whitelist

    def forged_chain(self, host: str) -> tuple[Certificate, ...]:
        """The substitute chain for an intercepted host (leaf, intermediate,
        root) — regenerated once per hostname and cached."""
        if host not in self._leaf_cache:
            intermediate = self.intermediate_certificate
            keypair = generate_keypair(derive_random(self.seed, "forged-leaf", host))
            leaf = (
                CertificateBuilder()
                .subject(Name.build(CN=host, O=self.operator_name))
                .issuer(intermediate.subject)
                .public_key(keypair.public)
                .serial_number(abs(hash(host)) % 2**62 + 3)
                .validity(_NOT_BEFORE, _NOT_AFTER)
                .tls_server(host)
                .sign(
                    self._intermediate_keypair.private,
                    issuer_public_key=self._intermediate_keypair.public,
                )
            )
            self._leaf_cache[host] = (leaf, intermediate, self.root_certificate)
        return self._leaf_cache[host]

    def relay(
        self, host: str, port: int, upstream_chain: tuple[Certificate, ...]
    ) -> tuple[tuple[Certificate, ...], bool]:
        """Handle one client connection.

        Returns the chain the client will see and whether interception
        took place.
        """
        intercept = self.should_intercept(host, port)
        self.decisions.append((host, port, intercept))
        if not intercept:
            return upstream_chain, False
        return self.forged_chain(host), True
