#!/usr/bin/env python
"""CI smoke for live-ingest fleet serving.

Boots ``repro stream`` in fleet mode (two event-loop workers), watches
``/v1/health`` while the stream drains, and asserts the properties the
live engine promises:

* generations advance while ingestion runs (the warming generation-0
  placeholder is replaced by real republishes);
* once the stream is exhausted, *every* worker serves the same final
  generation and the same ``/v1/tables/1`` ETag — the broadcast path
  moved the whole fleet, not just one worker;
* SIGTERM drains the fleet with exit 0 and the final report on stdout.
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import time

SCALE = "0.05"
EXPECTED_SESSIONS = 815  # deterministic at --scale 0.05, seed tangled-mass


def sample(port: int):
    """One keep-alive connection → (worker pid, generation, table-1 ETag).

    Same connection for all three requests, so one worker answers them
    all — the only way to pair a pid with what that worker serves.
    """
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", "/v1/metrics")
        pid = int(
            json.loads(connection.getresponse().read())["gauges"][
                "serve.worker.pid"
            ]
        )
        connection.request("GET", "/v1/health")
        health = json.loads(connection.getresponse().read())
        connection.request("GET", "/v1/tables/1")
        response = connection.getresponse()
        response.read()
        return pid, health["snapshot"], response.getheader("ETag")
    finally:
        connection.close()


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "stream",
            "--scale", SCALE, "--notary-scale", SCALE,
            "--port", "0", "--processes", "2",
            "--transport", "evloop", "--cadence", "1.0",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    port = None
    deadline = time.time() + 180
    while time.time() < deadline and port is None:
        line = proc.stderr.readline()
        if not line:
            break
        match = re.search(r"http://127\.0\.0\.1:(\d+)/", line)
        if match:
            port = int(match.group(1))
    assert port, "fleet never announced its port"
    print(f"fleet up on port {port}")

    generations = set()
    deadline = time.time() + 300
    while time.time() < deadline:
        try:
            _, snapshot, _ = sample(port)
        except (OSError, http.client.HTTPException):
            time.sleep(0.3)
            continue
        generations.add(snapshot["generation"])
        if snapshot["sessions"] == EXPECTED_SESSIONS:
            break
        time.sleep(0.5)
    else:
        raise AssertionError(f"stream never drained; saw {sorted(generations)}")
    assert len(generations) > 1, f"generation never advanced: {generations}"
    print(f"generations seen while draining: {sorted(generations)}")

    # every worker must now serve the same generation and the same bytes
    per_worker = {}
    deadline = time.time() + 60
    final = max(generations)
    while time.time() < deadline and (
        len(per_worker) < 2
        or {g for g, _ in per_worker.values()} != {final}
    ):
        try:
            pid, snapshot, etag = sample(port)
        except (OSError, http.client.HTTPException):
            time.sleep(0.2)
            continue
        per_worker[pid] = (snapshot["generation"], etag)
        final = max(final, snapshot["generation"])
    assert len(per_worker) == 2, f"only sampled workers {per_worker}"
    assert {g for g, _ in per_worker.values()} == {final}, (
        f"fleet split across generations: {per_worker}"
    )
    assert len({etag for _, etag in per_worker.values()}) == 1, (
        f"ETags diverged across workers: {per_worker}"
    )
    print(f"both workers at generation {final} with identical ETags")

    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=60)
    print(stderr.splitlines()[-1] if stderr.splitlines() else "")
    assert proc.returncode == 0, f"fleet exited {proc.returncode}"
    assert "reproduction study report" in stdout, "final report missing"
    print("fleet drained with exit 0 and printed the final report")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
