"""Property tests: the verification cache never changes a verdict.

The fast path is only sound if a cache-backed verification agrees with
the uncached PKCS#1 check on *every* input class — genuinely signed
certificates, tampered TBS bytes, wrong issuer keys and tampered
signatures — and keeps agreeing once the answer comes from the memo
instead of the arithmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, SignatureError, generate_keypair
from repro.crypto.cache import VerificationCache
from repro.x509.builder import make_root_certificate
from repro.x509.certificate import Certificate
from repro.x509.name import Name
from repro.x509.verify import verify_certificate_signature, verify_signature

#: Fixed keypairs shared across examples (keygen per-example is too slow).
KEYPAIRS = [
    generate_keypair(DeterministicRandom(f"cache-property-{index}"))
    for index in range(3)
]

#: One self-signed certificate per keypair.
CERTIFICATES = [
    make_root_certificate(
        keypair, Name.build(CN=f"Cache Property Root {index}", O="Test")
    )
    for index, keypair in enumerate(KEYPAIRS)
]


def _with_tampered_tbs(certificate: Certificate, position: int, xor: int) -> Certificate:
    """A copy of *certificate* whose signed bytes differ in one bit."""
    tbs = bytearray(certificate.tbs_encoded)
    tbs[position % len(tbs)] ^= xor
    return Certificate(
        encoded=certificate.encoded,
        tbs_encoded=bytes(tbs),
        version=certificate.version,
        serial_number=certificate.serial_number,
        signature_algorithm=certificate.signature_algorithm,
        issuer=certificate.issuer,
        subject=certificate.subject,
        not_before=certificate.not_before,
        not_after=certificate.not_after,
        public_key=certificate.public_key,
        extensions=certificate.extensions,
        signature=certificate.signature,
    )


def _with_tampered_signature(certificate: Certificate, position: int, xor: int) -> Certificate:
    signature = bytearray(certificate.signature)
    signature[position % len(signature)] ^= xor
    return Certificate(
        encoded=certificate.encoded,
        tbs_encoded=certificate.tbs_encoded,
        version=certificate.version,
        serial_number=certificate.serial_number,
        signature_algorithm=certificate.signature_algorithm,
        issuer=certificate.issuer,
        subject=certificate.subject,
        not_before=certificate.not_before,
        not_after=certificate.not_after,
        public_key=certificate.public_key,
        extensions=certificate.extensions,
        signature=bytes(signature),
    )


def _uncached_verdict(certificate: Certificate, key) -> bool:
    try:
        verify_certificate_signature(certificate, key)
    except SignatureError:
        return False
    return True


@given(
    signer=st.integers(0, len(KEYPAIRS) - 1),
    verifier=st.integers(0, len(KEYPAIRS) - 1),
    tamper=st.sampled_from(["none", "tbs", "signature"]),
    position=st.integers(0, 4095),
    xor=st.integers(1, 255),
)
@settings(max_examples=80, deadline=None)
def test_cached_verdict_agrees_with_uncached(signer, verifier, tamper, position, xor):
    certificate = CERTIFICATES[signer]
    if tamper == "tbs":
        certificate = _with_tampered_tbs(certificate, position, xor)
    elif tamper == "signature":
        certificate = _with_tampered_signature(certificate, position, xor)
    key = KEYPAIRS[verifier].public

    expected = _uncached_verdict(certificate, key)
    cache = VerificationCache()
    cold = verify_signature(certificate, key, cache=cache)
    warm = verify_signature(certificate, key, cache=cache)

    assert cold == expected
    assert warm == expected
    assert cache.misses == 1 and cache.hits == 1

    disabled = VerificationCache(enabled=False)
    assert verify_signature(certificate, key, cache=disabled) == expected
    # a disabled cache neither stores nor counts — pure pass-through
    assert len(disabled) == 0
    assert disabled.hits == 0 and disabled.misses == 0


@given(
    signer=st.integers(0, len(KEYPAIRS) - 1),
    position=st.integers(0, 4095),
    xor=st.integers(1, 255),
)
@settings(max_examples=40, deadline=None)
def test_tampered_tbs_never_collides_with_genuine_entry(signer, position, xor):
    """A warm entry for the genuine cert must not answer for a tampered
    one: the TBS digest in the key separates them."""
    genuine = CERTIFICATES[signer]
    key = KEYPAIRS[signer].public
    cache = VerificationCache()
    assert verify_signature(genuine, key, cache=cache) is True

    tampered = _with_tampered_tbs(genuine, position, xor)
    assert verify_signature(tampered, key, cache=cache) is False
    assert cache.misses == 2  # distinct key — no false hit


def test_cache_counts_and_clear():
    cache = VerificationCache()
    certificate, key = CERTIFICATES[0], KEYPAIRS[0].public
    for _ in range(5):
        assert verify_signature(certificate, key, cache=cache)
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (4, 1, 1)
    assert stats.lookups == 5
    assert stats.hit_rate == pytest.approx(0.8)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().lookups == 0
