"""Property tests for CRT-accelerated RSA signing.

The CRT lane is a pure acceleration: for any message and any key, the
signature must equal the CRT-free ``pow(m, d, n)`` bit for bit, whether
the fast lane is on, off, or the key simply never carried CRT
parameters (legacy 3-field DER). The private-key DER codec must also
round-trip the CRT fields losslessly.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, generate_keypair, sign, verify
from repro.crypto.fastlane import fastlane_disabled
from repro.crypto.rsa import RsaPrivateKey

KEYPAIR = generate_keypair(DeterministicRandom("crt-fixture"))
PRIVATE = KEYPAIR.private
#: The same key with its CRT parameters stripped: forced textbook lane.
CRT_FREE = dataclasses.replace(
    PRIVATE,
    prime_p=0,
    prime_q=0,
    exponent_dp=0,
    exponent_dq=0,
    coefficient_qinv=0,
)


def test_fixture_keys_disagree_only_on_crt_fields():
    assert PRIVATE.has_crt
    assert not CRT_FREE.has_crt
    assert (PRIVATE.modulus, PRIVATE.private_exponent) == (
        CRT_FREE.modulus,
        CRT_FREE.private_exponent,
    )


@given(st.integers(0, 2**600))
@settings(max_examples=100, deadline=None)
def test_crt_matches_textbook_signature(message):
    message %= PRIVATE.modulus
    assert PRIVATE.raw_sign(message) == CRT_FREE.raw_sign(message)
    assert PRIVATE.raw_sign(message) == pow(
        message, PRIVATE.private_exponent, PRIVATE.modulus
    )


@given(st.integers(0, 2**600))
@settings(max_examples=60, deadline=None)
def test_fastlane_off_matches_fastlane_on(message):
    message %= PRIVATE.modulus
    fast = PRIVATE.raw_sign(message)
    with fastlane_disabled():
        assert PRIVATE.raw_sign(message) == fast


@given(st.binary(max_size=512))
@settings(max_examples=60, deadline=None)
def test_crt_signatures_verify(data):
    signature = sign(PRIVATE, "sha256", data)
    verify(KEYPAIR.public, "sha256", data, signature)
    assert signature == sign(CRT_FREE, "sha256", data)


class TestPrivateKeyDer:
    def test_crt_key_roundtrips_all_fields(self):
        decoded = RsaPrivateKey.from_der(PRIVATE.to_der())
        assert decoded == PRIVATE
        assert decoded.has_crt

    def test_crt_free_key_roundtrips_as_legacy(self):
        decoded = RsaPrivateKey.from_der(CRT_FREE.to_der())
        assert decoded == CRT_FREE
        assert not decoded.has_crt

    def test_legacy_encoding_is_shorter(self):
        # 3-INTEGER legacy vs 9-field RFC 8017: both must parse, and the
        # CRT form is strictly larger (it carries five more INTEGERs).
        assert len(CRT_FREE.to_der()) < len(PRIVATE.to_der())

    def test_decoded_crt_key_signs_identically(self):
        decoded = RsaPrivateKey.from_der(PRIVATE.to_der())
        message = 0xDEADBEEF % PRIVATE.modulus
        assert decoded.raw_sign(message) == PRIVATE.raw_sign(message)
