"""Property-based tests for CRL semantics and verifier robustness."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import CertificateBuilder, ChainVerifier, CrlBuilder, Name
from repro.x509.builder import make_root_certificate
from repro.x509.crl import CertificateRevocationList

NOW = datetime.datetime(2014, 4, 1)

CA_KEYPAIR = generate_keypair(DeterministicRandom("crl-prop-ca"))
CA_CERT = make_root_certificate(CA_KEYPAIR, Name.build(CN="CRL Prop CA"))

LEAF_KEYPAIR = generate_keypair(DeterministicRandom("crl-prop-leaf"))


def _leaf(serial: int):
    return (
        CertificateBuilder()
        .subject(Name.build(CN=f"s{serial}.example"))
        .issuer(CA_CERT.subject)
        .public_key(LEAF_KEYPAIR.public)
        .serial_number(serial)
        .sign(CA_KEYPAIR.private, issuer_public_key=CA_KEYPAIR.public)
    )


@given(
    revoked=st.sets(st.integers(1, 40), max_size=12),
    probe=st.integers(1, 40),
)
@settings(max_examples=40, deadline=None)
def test_is_revoked_iff_serial_listed(revoked, probe):
    builder = CrlBuilder(CA_CERT.subject)
    for serial in revoked:
        builder.revoke(serial, at=NOW)
    crl = builder.sign(
        CA_KEYPAIR.private,
        this_update=NOW,
        next_update=NOW + datetime.timedelta(days=30),
    )
    assert crl.is_revoked(_leaf(probe)) == (probe in revoked)


@given(revoked=st.sets(st.integers(1, 10_000_000), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_crl_der_roundtrip(revoked):
    builder = CrlBuilder(CA_CERT.subject)
    for serial in revoked:
        builder.revoke(serial, at=NOW)
    crl = builder.sign(
        CA_KEYPAIR.private,
        this_update=NOW,
        next_update=NOW + datetime.timedelta(days=30),
    )
    parsed = CertificateRevocationList.from_der(crl.encoded)
    assert {entry.serial_number for entry in parsed.entries} == revoked
    parsed.verify_signature(CA_CERT.public_key)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_validate_never_crashes_on_shuffled_bundles(data):
    """Any subset/order of a small cert zoo validates or fails cleanly."""
    zoo = [
        CA_CERT,
        _leaf(1),
        _leaf(2),
        make_root_certificate(
            generate_keypair(DeterministicRandom("crl-prop-other")),
            Name.build(CN="Other Root"),
        ),
    ]
    presented = data.draw(
        st.lists(st.sampled_from(zoo), min_size=1, max_size=6)
    )
    verifier = ChainVerifier([CA_CERT], at=NOW)
    result = verifier.validate(presented)
    assert isinstance(result.trusted, bool)
    if result.trusted:
        assert result.anchor is not None
