"""Property-based tests over store diffing and serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import RootStore, diff_stores
from repro.rootstore.serialization import (
    store_from_json,
    store_from_pem,
    store_to_json,
    store_to_pem,
)
from repro.x509 import Name
from repro.x509.builder import make_root_certificate

#: A fixed pool of distinct certificates to draw store contents from.
_POOL = [
    make_root_certificate(
        generate_keypair(DeterministicRandom(f"store-prop-{index}")),
        Name.build(CN=f"Pool CA {index}"),
    )
    for index in range(12)
]

subsets = st.sets(st.integers(0, len(_POOL) - 1), max_size=len(_POOL))


@given(left=subsets, right=subsets)
@settings(max_examples=120)
def test_diff_partitions_store(left, right):
    """shared + added exactly partition the store under test."""
    store = RootStore("s", [_POOL[i] for i in left])
    reference = RootStore("r", [_POOL[i] for i in right])
    diff = diff_stores(store, reference)
    assert len(diff.shared) + len(diff.added) == len(store)
    assert len(diff.shared) == len(left & right)
    assert len(diff.added) == len(left - right)
    assert len(diff.missing) == len(right - left)


@given(left=subsets, right=subsets)
@settings(max_examples=60)
def test_diff_antisymmetry(left, right):
    """A's additions against B are B's missing against A, and vice versa."""
    a = RootStore("a", [_POOL[i] for i in left])
    b = RootStore("b", [_POOL[i] for i in right])
    ab = diff_stores(a, b)
    ba = diff_stores(b, a)
    assert {c.encoded for c in ab.added} == {c.encoded for c in ba.missing}
    assert {c.encoded for c in ab.missing} == {c.encoded for c in ba.added}


@given(members=subsets)
@settings(max_examples=60)
def test_diff_reflexivity(members):
    store = RootStore("s", [_POOL[i] for i in members])
    diff = diff_stores(store, store)
    assert diff.is_stock
    assert len(diff.shared) == len(store)


@given(members=subsets, disabled=subsets)
@settings(max_examples=60)
def test_json_roundtrip_preserves_everything(members, disabled):
    store = RootStore("prop", [_POOL[i] for i in members])
    for index in disabled & members:
        store.disable(_POOL[index])
    parsed = store_from_json(store_to_json(store))
    assert len(parsed) == len(store)
    assert {c.encoded for c in parsed.certificates(include_disabled=True)} == {
        c.encoded for c in store.certificates(include_disabled=True)
    }
    assert {c.encoded for c in parsed.certificates()} == {
        c.encoded for c in store.certificates()
    }


@given(members=subsets)
@settings(max_examples=60)
def test_pem_roundtrip_preserves_membership(members):
    store = RootStore("prop", [_POOL[i] for i in members])
    parsed = store_from_pem(store_to_pem(store))
    assert set(parsed) == set(store)
