"""Property-based tests for the RFC 6962 Merkle tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctlog.merkle import MerkleTree, verify_consistency, verify_inclusion

leaf_lists = st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=64)


@given(leaves=leaf_lists, data=st.data())
@settings(max_examples=80)
def test_every_inclusion_proof_verifies(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    proof = tree.inclusion_proof(index)
    assert verify_inclusion(
        leaves[index], index, len(leaves), proof, tree.root_hash()
    )


@given(leaves=leaf_lists, data=st.data())
@settings(max_examples=80)
def test_wrong_leaf_never_verifies(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    impostor = data.draw(st.binary(min_size=1, max_size=16))
    proof = tree.inclusion_proof(index)
    if impostor == leaves[index]:
        return
    assert not verify_inclusion(
        impostor, index, len(leaves), proof, tree.root_hash()
    )


@given(leaves=leaf_lists, data=st.data())
@settings(max_examples=80)
def test_every_consistency_proof_verifies(leaves, data):
    tree = MerkleTree(leaves)
    old_size = data.draw(st.integers(1, len(leaves)))
    proof = tree.consistency_proof(old_size)
    assert verify_consistency(
        old_size, len(leaves), tree.root_hash(old_size), tree.root_hash(), proof
    )


@given(leaves=leaf_lists, extra=st.lists(st.binary(min_size=1, max_size=8), max_size=16))
@settings(max_examples=60)
def test_append_only_history_stable(leaves, extra):
    """Appending never changes any earlier tree head."""
    tree = MerkleTree(leaves)
    heads = [tree.root_hash(size) for size in range(1, len(leaves) + 1)]
    for item in extra:
        tree.append(item)
    for size, head in enumerate(heads, start=1):
        assert tree.root_hash(size) == head


@given(leaves=leaf_lists, data=st.data())
@settings(max_examples=60)
def test_rewritten_history_fails_consistency(leaves, data):
    """Mutating any leaf below the old head breaks the consistency proof."""
    if len(leaves) < 2:
        return
    old_size = data.draw(st.integers(1, len(leaves) - 1))
    victim = data.draw(st.integers(0, old_size - 1))
    original = MerkleTree(leaves)
    old_root = original.root_hash(old_size)
    mutated_leaves = list(leaves)
    mutated_leaves[victim] = mutated_leaves[victim] + b"\x00"
    mutated = MerkleTree(mutated_leaves)
    proof = mutated.consistency_proof(old_size)
    assert not verify_consistency(
        old_size, len(mutated_leaves), old_root, mutated.root_hash(), proof
    )
