"""Property-based tests for resilient ingestion.

The wild-data invariant from the fault model: for ANY byte-level
corruption of a valid session's certificate payloads, ingestion either
recovers a certificate equal to the original (the corruption missed or
cancelled out) or dead-letters the payload into the quarantine — and
the study pipeline over the resulting dataset never raises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CertificateUpload, Quarantine, ingest_certificate
from repro.netalyzr.dataset import NetalyzrDataset, SessionUpload
from repro.netalyzr.session import DeviceTuple, MeasurementSession
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import pem_encode

_DER_CACHE: list[bytes] = []


def _base_certificates(factory, catalog):
    if not _DER_CACHE:
        _DER_CACHE.extend(
            factory.root_certificate(profile).encoded
            for profile in catalog.all_profiles()[:4]
        )
    return _DER_CACHE


corruptions = st.lists(
    st.tuples(st.integers(min_value=0), st.integers(1, 255)),
    min_size=1,
    max_size=12,
)


def _apply(der: bytes, edits, cut: int | None) -> bytes:
    corrupt = bytearray(der)
    for offset, xor in edits:
        corrupt[offset % len(corrupt)] ^= xor
    if cut is not None:
        corrupt = corrupt[: cut % (len(corrupt) + 1)]
    return bytes(corrupt)


@settings(max_examples=150, deadline=None)
@given(
    index=st.integers(0, 3),
    edits=corruptions,
    cut=st.one_of(st.none(), st.integers(min_value=0)),
)
def test_corrupt_payload_well_formed_or_quarantined(
    factory, catalog, index, edits, cut
):
    """Without a fingerprint claim, ingest never raises: the payload is
    either quarantined or yields a well-formed, round-trip-stable
    certificate. (Byte-exact equality needs the claim — see the next
    test — because a flipped byte that still decodes cleanly is
    indistinguishable from a legitimately different certificate.)"""
    der = _base_certificates(factory, catalog)[index]
    corrupt = _apply(der, edits, cut)
    quarantine = Quarantine()
    upload = CertificateUpload(payload=corrupt)
    certificate = ingest_certificate(upload, quarantine, "prop")
    if certificate is None:
        # damaged: exactly one dead-letter record, nothing raised
        assert len(quarantine) == 1
        assert quarantine.records[0].where == "prop"
    else:
        assert len(quarantine) == 0
        if corrupt == der:
            assert certificate.encoded == der
        # whatever was accepted is stable: its own bytes re-ingest
        # cleanly and fingerprint deterministically
        again = ingest_certificate(
            CertificateUpload(
                payload=certificate.encoded,
                claimed_fingerprint=fingerprint(certificate),
            ),
            quarantine,
            "prop-again",
        )
        assert again is not None and again.encoded == certificate.encoded
        assert len(quarantine) == 0


@settings(max_examples=100, deadline=None)
@given(edits=corruptions, cut=st.one_of(st.none(), st.integers(min_value=0)))
def test_fingerprinted_corruption_never_accepted_damaged(
    factory, catalog, edits, cut
):
    """With a claimed fingerprint, a changed payload can never slip in."""
    import hashlib

    der = _base_certificates(factory, catalog)[0]
    corrupt = _apply(der, edits, cut)
    quarantine = Quarantine()
    certificate = ingest_certificate(
        CertificateUpload(
            payload=corrupt, claimed_fingerprint=hashlib.sha256(der).hexdigest()
        ),
        quarantine,
        "prop",
    )
    if corrupt == der:
        assert certificate is not None and certificate.encoded == der
    else:
        assert certificate is None
        assert len(quarantine) == 1


@settings(max_examples=60, deadline=None)
@given(
    edits=corruptions,
    cut=st.one_of(st.none(), st.integers(min_value=0)),
    as_pem=st.booleans(),
)
def test_session_ingest_never_raises(factory, catalog, edits, cut, as_pem):
    """A session with one corrupted root always ingests; study-side
    consumers (observation counting) keep working on the survivors."""
    good, target = _base_certificates(factory, catalog)[:2]
    corrupt = _apply(target, edits, cut)
    payload = pem_encode(corrupt) if as_pem else corrupt
    session = MeasurementSession(
        session_id=99,
        device_tuple=DeviceTuple("Vodafone", "10.0.0.1", "GT-I9100", "4.0"),
        manufacturer="Samsung",
        model="GT-I9100",
        os_version="4.0",
        operator="Vodafone",
        country="DE",
        rooted=False,
        root_certificates=(),
    )
    dataset = NetalyzrDataset()
    accepted = dataset.ingest(
        SessionUpload(
            session=session,
            roots=(
                CertificateUpload(payload=good),
                CertificateUpload(payload=payload),
            ),
        )
    )
    assert accepted is not None
    assert dataset.session_count == 1
    survivors = {c.encoded for c in accepted.root_certificates}
    assert good in survivors
    if corrupt != target:
        # Either the bad root was quarantined (degraded session) or the
        # corrupted bytes still parsed — in which case exactly those
        # bytes were kept, nothing invented.
        if accepted.degraded:
            assert len(dataset.quarantine) == 1
            assert dataset.health.quarantined_certificates == 1
        else:
            assert survivors == {good, corrupt}
    # Downstream consumers never see the damage.
    assert dataset.total_certificate_observations == len(
        accepted.root_certificates
    )
    assert dataset.unique_certificates()
