"""Property-based tests over the X.509 layer."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import Certificate, CertificateBuilder, CertificateError, Name
from repro.x509.builder import make_root_certificate
from repro.x509.constraints import NameConstraints
from repro.x509.fingerprint import equivalence_key, identity_key
from repro.x509.pem import pem_decode, pem_encode

#: Shared keys: keygen per-example is too slow for hypothesis.
KEYPAIR = generate_keypair(DeterministicRandom("x509-property"))
ROOT = make_root_certificate(KEYPAIR, Name.build(CN="Property Root", O="P"))

printable_names = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 .-",
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())


@given(cn=printable_names, org=printable_names, serial=st.integers(1, 2**64))
@settings(max_examples=40, deadline=None)
def test_certificate_roundtrip(cn, org, serial):
    """Build -> DER -> parse preserves every field we set."""
    certificate = (
        CertificateBuilder()
        .subject(Name.build(CN=cn, O=org))
        .public_key(KEYPAIR.public)
        .serial_number(serial)
        .self_sign(KEYPAIR.private)
    )
    parsed = Certificate.from_der(certificate.encoded)
    assert parsed.subject.get("CN") == cn
    assert parsed.subject.get("O") == org
    assert parsed.serial_number == serial
    assert parsed == certificate


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_parser_never_crashes_on_mutations(data):
    """Any single-byte mutation of a valid certificate either parses or
    raises CertificateError -- never an unexpected exception."""
    der = bytearray(ROOT.encoded)
    position = data.draw(st.integers(0, len(der) - 1))
    der[position] ^= data.draw(st.integers(1, 255))
    try:
        Certificate.from_der(bytes(der))
    except CertificateError:
        pass


@given(st.binary(max_size=200))
@settings(max_examples=100)
def test_parser_never_crashes_on_garbage(blob):
    try:
        Certificate.from_der(blob)
    except CertificateError:
        pass


@given(st.integers(1, 2**32))
@settings(max_examples=30, deadline=None)
def test_pem_roundtrip_any_cert(serial):
    certificate = (
        CertificateBuilder()
        .subject(Name.build(CN=f"pem-{serial}"))
        .public_key(KEYPAIR.public)
        .serial_number(serial)
        .self_sign(KEYPAIR.private)
    )
    assert pem_decode(pem_encode(certificate.encoded)) == certificate.encoded


@given(
    not_after_a=st.datetimes(
        min_value=datetime.datetime(2015, 1, 1),
        max_value=datetime.datetime(2040, 1, 1),
    ),
    not_after_b=st.datetimes(
        min_value=datetime.datetime(2015, 1, 1),
        max_value=datetime.datetime(2040, 1, 1),
    ),
)
@settings(max_examples=25, deadline=None)
def test_reissue_equivalence_invariant(not_after_a, not_after_b):
    """Re-issuing with any two validity windows never breaks the §4.2
    equivalence, and breaks strict identity iff the DER differs."""
    subject = Name.build(CN="Equivalence Property Root")
    a = make_root_certificate(
        KEYPAIR, subject, not_after=not_after_a.replace(microsecond=0)
    )
    b = make_root_certificate(
        KEYPAIR, subject, not_after=not_after_b.replace(microsecond=0)
    )
    assert equivalence_key(a) == equivalence_key(b)
    assert (identity_key(a) == identity_key(b)) == (a.encoded == b.encoded)


dns_labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)
dns_names = st.builds(".".join, st.lists(dns_labels, min_size=2, max_size=4))


@given(name=dns_names, subtrees=st.lists(dns_names, min_size=1, max_size=4))
@settings(max_examples=100)
def test_name_constraints_excluded_wins(name, subtrees):
    """A name excluded anywhere is never allowed, regardless of what is
    permitted."""
    constraints = NameConstraints(
        permitted=tuple(subtrees) + (name,), excluded=(name,)
    )
    assert not constraints.allows(name)


@given(name=dns_names, parent=dns_names)
@settings(max_examples=100)
def test_name_constraints_subdomain_closure(name, parent):
    """If a subtree permits a name, it permits all its subdomains too."""
    constraints = NameConstraints(permitted=(parent,))
    if constraints.allows(name):
        assert constraints.allows(f"sub.{name}")


@given(dns_names)
@settings(max_examples=100)
def test_name_constraints_no_suffix_confusion(name):
    """'evilgov.ve' must not satisfy a 'gov.ve' constraint: matching is
    label-aligned, not string-suffix."""
    constraints = NameConstraints(permitted=(name,))
    assert not constraints.allows("x" + name)
