"""Property-based tests over chain building and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import CertificateBuilder, ChainVerifier, Name, build_chain
from repro.x509.builder import make_root_certificate

#: A 4-level PKI built once: root -> inter1 -> inter2 -> leaf.
_KEYS = [
    generate_keypair(DeterministicRandom(f"chain-prop-{i}")) for i in range(4)
]
_ROOT = make_root_certificate(_KEYS[0], Name.build(CN="Chain Prop Root", O="C"))
_INTER1 = (
    CertificateBuilder()
    .subject(Name.build(CN="Chain Prop Inter 1", O="C"))
    .issuer(_ROOT.subject)
    .public_key(_KEYS[1].public)
    .serial_number(2)
    .ca(True)
    .sign(_KEYS[0].private, issuer_public_key=_KEYS[0].public)
)
_INTER2 = (
    CertificateBuilder()
    .subject(Name.build(CN="Chain Prop Inter 2", O="C"))
    .issuer(_INTER1.subject)
    .public_key(_KEYS[2].public)
    .serial_number(3)
    .ca(True)
    .sign(_KEYS[1].private, issuer_public_key=_KEYS[1].public)
)
_LEAF = (
    CertificateBuilder()
    .subject(Name.build(CN="prop.example.com"))
    .issuer(_INTER2.subject)
    .public_key(_KEYS[3].public)
    .serial_number(4)
    .tls_server("prop.example.com")
    .sign(_KEYS[2].private, issuer_public_key=_KEYS[2].public)
)
_STRAY = make_root_certificate(
    generate_keypair(DeterministicRandom("chain-prop-stray")),
    Name.build(CN="Stray Root"),
)
_FULL_PATH = [_LEAF, _INTER2, _INTER1, _ROOT]
_EXTRAS = [_INTER2, _INTER1, _ROOT, _STRAY]


@given(order=st.permutations(_EXTRAS))
@settings(max_examples=60, deadline=None)
def test_build_chain_order_invariant(order):
    """Whatever order (and garbage) the server sends, the built path is
    the same correct leaf-to-root path."""
    path = build_chain(_LEAF, order)
    assert path == _FULL_PATH


@given(
    order=st.permutations([_INTER2, _INTER1]),
    include_root=st.booleans(),
    duplicate=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_validation_order_invariant(order, include_root, duplicate):
    """Validation succeeds for any presentation order, with or without
    the root, even with duplicated intermediates."""
    presented = [_LEAF] + list(order)
    if include_root:
        presented.append(_ROOT)
    if duplicate:
        presented.append(order[0])
    verifier = ChainVerifier([_ROOT])
    result = verifier.validate(presented, "prop.example.com")
    assert result.trusted
    assert result.anchor == _ROOT


@given(subset=st.sets(st.sampled_from(["inter1", "inter2"])))
@settings(max_examples=20, deadline=None)
def test_missing_intermediate_never_validates(subset):
    """Validation succeeds iff every intermediate is present."""
    by_name = {"inter1": _INTER1, "inter2": _INTER2}
    presented = [_LEAF] + [by_name[name] for name in subset]
    result = ChainVerifier([_ROOT]).validate(presented)
    assert result.trusted == (subset == {"inter1", "inter2"})


@given(anchor_set=st.sets(st.sampled_from(["root", "stray"]), min_size=1))
@settings(max_examples=20, deadline=None)
def test_anchor_monotonicity(anchor_set):
    """Adding anchors never turns a trusted chain untrusted."""
    anchors = [{"root": _ROOT, "stray": _STRAY}[name] for name in anchor_set]
    result = ChainVerifier(anchors).validate([_LEAF, _INTER2, _INTER1])
    assert result.trusted == ("root" in anchor_set)
