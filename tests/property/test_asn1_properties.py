"""Property-based tests for the DER codec."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1 import (
    Asn1Error,
    ObjectIdentifier,
    decode,
    encode_bit_string,
    encode_integer,
    encode_octet_string,
    encode_oid,
    encode_sequence,
    encode_utc_time,
    encode_utf8_string,
)

oids = st.builds(
    lambda first, second, rest: ObjectIdentifier([first, second] + rest),
    st.integers(0, 2),
    st.integers(0, 39),
    st.lists(st.integers(0, 2**40), max_size=8),
)


@given(st.integers(min_value=-(2**2048), max_value=2**2048))
def test_integer_roundtrip(value):
    assert decode(encode_integer(value)).as_integer() == value


@given(st.binary(max_size=300))
def test_octet_string_roundtrip(data):
    assert decode(encode_octet_string(data)).as_octet_string() == data


@given(st.binary(min_size=1, max_size=100), st.integers(0, 7))
def test_bit_string_roundtrip(data, unused):
    decoded, got_unused = decode(encode_bit_string(data, unused)).as_bit_string()
    assert decoded == data
    assert got_unused == unused


@given(st.text(max_size=100))
def test_utf8_string_roundtrip(text):
    assert decode(encode_utf8_string(text)).as_string() == text


@given(oids)
def test_oid_roundtrip(oid):
    assert decode(encode_oid(oid)).as_oid() == oid


@given(
    st.datetimes(
        min_value=datetime.datetime(1950, 1, 1),
        max_value=datetime.datetime(2049, 12, 31, 23, 59, 59),
    )
)
def test_utc_time_roundtrip(moment):
    moment = moment.replace(microsecond=0)
    assert decode(encode_utc_time(moment)).as_time() == moment


@given(st.lists(st.integers(-(2**64), 2**64), max_size=10))
def test_sequence_roundtrip(values):
    encoded = encode_sequence([encode_integer(v) for v in values])
    assert [child.as_integer() for child in decode(encoded)] == values


@given(st.binary(max_size=64))
@settings(max_examples=300)
def test_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode or raise Asn1Error -- never crash."""
    try:
        decode(data)
    except Asn1Error:
        pass


@given(st.binary(min_size=1, max_size=64))
def test_decode_is_partial_inverse(data):
    """If garbage decodes, re-encoding the TLV reproduces the input."""
    try:
        obj = decode(data)
    except Asn1Error:
        return
    assert obj.encoded == data
