"""Property-based tests for RSA/PKCS#1 invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    DeterministicRandom,
    RsaPublicKey,
    SignatureError,
    generate_keypair,
    sign,
    verify,
)

#: A fixed keypair shared across examples (keygen per-example is too slow).
KEYPAIR = generate_keypair(DeterministicRandom("property-fixture"))


@given(st.binary(max_size=1024))
@settings(max_examples=60, deadline=None)
def test_sign_then_verify_always_succeeds(data):
    signature = sign(KEYPAIR.private, "sha256", data)
    verify(KEYPAIR.public, "sha256", data, signature)


@given(st.binary(max_size=256), st.integers(0, 63), st.integers(1, 255))
@settings(max_examples=60, deadline=None)
def test_bitflip_anywhere_breaks_signature(data, position, xor):
    signature = bytearray(sign(KEYPAIR.private, "sha256", data))
    signature[position % len(signature)] ^= xor
    with pytest.raises(SignatureError):
        verify(KEYPAIR.public, "sha256", data, bytes(signature))


@given(st.binary(max_size=256), st.binary(max_size=256))
@settings(max_examples=60, deadline=None)
def test_signature_binds_message(first, second):
    signature = sign(KEYPAIR.private, "sha256", first)
    if first == second:
        verify(KEYPAIR.public, "sha256", second, signature)
    else:
        with pytest.raises(SignatureError):
            verify(KEYPAIR.public, "sha256", second, signature)


@given(st.integers(1, 2**500))
@settings(max_examples=60, deadline=None)
def test_raw_sign_verify_are_inverse(message):
    message %= KEYPAIR.public.modulus
    assert KEYPAIR.public.raw_verify(KEYPAIR.private.raw_sign(message)) == message


@given(st.integers(3, 2**30).filter(lambda n: n % 2))
@settings(max_examples=100)
def test_public_key_der_roundtrip(exponent):
    key = RsaPublicKey(KEYPAIR.public.modulus, exponent)
    assert RsaPublicKey.from_der(key.to_der()) == key
