"""Integration: the full pipeline reproduces the paper's published shape.

One reduced-scale study run (shared by all tests here) must recover the
headline numbers of §4-§7 within tolerance, and the structural numbers
(store sizes, overlaps, Table 6 lists) exactly.
"""

import pytest

from repro.analysis import render_study_report
from repro.rootstore.catalog import StorePresence


class TestHeadlineScalars:
    def test_39_percent_extended(self, study):
        """§5: 39% of sessions carry additional certificates."""
        assert 0.34 <= study.extended_fraction <= 0.44

    def test_24_percent_rooted(self, study):
        """§6: 24% of sessions ran on rooted handsets."""
        assert 0.19 <= study.rooted.rooted_session_fraction <= 0.29

    def test_rooted_exclusive_fractions(self, study):
        """§6: ~6% of rooted sessions carry rooted-exclusive certs
        (~1.5% of all sessions)."""
        assert 0.02 <= study.rooted.exclusive_session_fraction_of_rooted <= 0.12
        assert 0.005 <= study.rooted.exclusive_session_fraction_of_all <= 0.03

    def test_five_handsets_missing_certs(self, study):
        """§5: only 5 handsets were missing AOSP certificates."""
        assert study.missing_cert_handsets == 5

    def test_exactly_one_interception(self, study):
        """§7: one proxied user, a Nexus 7 on Android 4.4."""
        assert len(study.interceptions) == 1
        session = study.interceptions[0].session
        assert session.model == "Nexus 7"
        assert session.os_version == "4.4"


class TestTable1:
    def test_exact_sizes(self, study):
        assert study.table1 == [
            ("AOSP 4.1", 139),
            ("AOSP 4.2", 140),
            ("AOSP 4.3", 146),
            ("AOSP 4.4", 150),
            ("iOS7", 227),
            ("Mozilla", 153),
        ]


class TestTable2:
    def test_top_manufacturer_order(self, study):
        names = [name for name, _ in study.table2.top_manufacturers]
        assert names == ["SAMSUNG", "LG", "ASUS", "HTC", "MOTOROLA"]

    def test_top_device_set(self, study):
        names = {name for name, _ in study.table2.top_devices}
        assert names == {
            "SAMSUNG Galaxy SIV",
            "SAMSUNG Galaxy SIII",
            "LG Nexus 4",
            "LG Nexus 5",
            "ASUS Nexus 7",
        }

    def test_galaxy_siv_first(self, study):
        assert study.table2.top_devices[0][0] == "SAMSUNG Galaxy SIV"


class TestTable3:
    def test_ordering(self, study):
        counts = dict(study.table3)
        assert counts["iOS 7"] > counts["AOSP 4.4"]
        assert counts["AOSP 4.4"] >= counts["AOSP 4.3"]
        assert counts["AOSP 4.2"] == counts["AOSP 4.1"]
        assert counts["AOSP 4.1"] > counts["Mozilla"]

    def test_near_identical(self, study):
        """Table 3's point: 'few practical differences between them'."""
        counts = [count for _, count in study.table3]
        assert (max(counts) - min(counts)) / max(counts) < 0.03


class TestTable4:
    def test_rows(self, study):
        rows = {row.category: row for row in study.table4}
        non_mozilla = rows["Non AOSP and non Mozilla Android certs"]
        assert 80 <= non_mozilla.total_roots <= 92  # paper: 85
        assert 0.62 <= non_mozilla.fraction_validating_nothing <= 0.82  # 72%
        in_mozilla = rows["Non AOSP root certs found on Mozilla's"]
        assert in_mozilla.total_roots == 16
        assert 0.28 <= in_mozilla.fraction_validating_nothing <= 0.48  # 38%
        core = rows["AOSP 4.4 and Mozilla root certs"]
        assert core.total_roots == 130
        assert 0.10 <= core.fraction_validating_nothing <= 0.20  # 15%
        aosp44 = rows["AOSP 4.4"]
        assert aosp44.total_roots == 150
        assert 0.18 <= aosp44.fraction_validating_nothing <= 0.28  # 23%
        ios7 = rows["iOS7"]
        assert ios7.total_roots == 227
        assert 0.35 <= ios7.fraction_validating_nothing <= 0.47  # 41%
        aggregated = rows["Aggregated Android root certs"]
        assert 230 <= aggregated.total_roots <= 245  # paper: 235
        assert 0.34 <= aggregated.fraction_validating_nothing <= 0.46  # 40%

    def test_bloat_ordering(self, study):
        """The paper's argument: extras and iOS7 are the dead weight."""
        rows = {row.category: row.fraction_validating_nothing for row in study.table4}
        assert (
            rows["Non AOSP and non Mozilla Android certs"]
            > rows["iOS7"]
            > rows["AOSP 4.4"]
            > rows["AOSP 4.4 and Mozilla root certs"]
        )


class TestTable5:
    def test_crazy_house_dominates(self, study):
        assert study.table5
        label, devices = study.table5[0]
        assert label == "CRAZY HOUSE"
        assert devices > 1
        assert devices == max(count for _, count in study.table5)

    def test_rooted_findings_absent_from_notary(self, study):
        """Table 5: 'None of these occurred in Notary traffic.'

        Checked for the named Table 5 CAs; at reduced population scale a
        stray firmware cert can look rooted-exclusive by coincidence, so
        the assertion is scoped to the app/user-installed roots.
        """
        named = {"CRAZY HOUSE", "MIND OVERFLOW", "USER_X",
                 "CDA/EMAILADDRESS", "CIRRUS, PRIVATE"}
        checked = [f for f in study.rooted.findings if f.ca_label in named]
        assert checked
        assert all(not finding.in_notary_traffic for finding in checked)


class TestTable6:
    def test_exact_intercepted_list(self, study):
        assert study.table6.intercepted == [
            "gmail.com:443",
            "mail.google.com:443",
            "mail.yahoo.com:443",
            "orcart.facebook.com:443",
            "www.bankofamerica.com:443",
            "www.chase.com:443",
            "www.hsbc.com:443",
            "www.icsi.berkeley.edu:443",
            "www.outlook.com:443",
            "www.skype.com:443",
            "www.viber.com:443",
            "www.yahoo.com:443",
        ]

    def test_exact_whitelisted_list(self, study):
        assert study.table6.whitelisted == [
            "google-analytics.com:443",
            "maps.google.com:443",
            "orcart.facebook.com:8883",
            "play.google.com:443",
            "supl.google.com:7275",
            "www.facebook.com:443",
            "www.google.co.uk:443",
            "www.google.com:443",
            "www.twitter.com:443",
        ]

    def test_interceptor_identity(self, study):
        assert study.table6.interceptor == "Reality Mine"


class TestFigure1:
    def test_over_40_additions_group(self, study):
        """Figure 1: >10% of 4.1/4.2 sessions add more than 40 certs."""
        old = [
            p
            for p in study.figure1
            if p.os_version in ("4.1", "4.2")
        ]
        total = sum(p.session_count for p in old)
        heavy = sum(p.session_count for p in old if p.additional_count > 40)
        assert heavy / total > 0.08

    def test_heavy_extenders_are_the_named_vendors(self, study):
        heavy = {
            p.manufacturer
            for p in study.figure1
            if p.additional_count > 40
        }
        assert {"HTC", "SAMSUNG"} <= heavy

    def test_aosp_counts_on_version_lines(self, study):
        """Most sessions carry exactly their version's AOSP count."""
        expected = {"4.1": 139, "4.2": 140, "4.3": 146, "4.4": 150}
        on_line = sum(
            p.session_count
            for p in study.figure1
            if p.aosp_count == expected[p.os_version]
        )
        total = sum(p.session_count for p in study.figure1)
        assert on_line / total > 0.95


class TestFigure2:
    def test_class_fractions_shape(self, study):
        """Figure 2's legend mix: unseen > android-only > iOS7-only > both."""
        fractions = study.figure2.class_fractions
        assert (
            fractions[StorePresence.NOT_RECORDED]
            > fractions[StorePresence.ANDROID_ONLY]
            > fractions[StorePresence.IOS7_ONLY]
            > fractions[StorePresence.MOZILLA_AND_IOS7]
        )
        assert abs(fractions[StorePresence.MOZILLA_AND_IOS7] - 0.067) < 0.04
        assert abs(fractions[StorePresence.NOT_RECORDED] - 0.40) < 0.06

    def test_certisign_row(self, study):
        """§5.1: CertiSign on 60-70% of Motorola 4.1 (Verizon) devices."""
        cells = [
            c
            for c in study.figure2.cells
            if c.group == "MOTOROLA 4.1" and c.cert_label.startswith("Certisign")
        ]
        if cells:  # group may fall under the 10-session floor at small scale
            assert all(0.2 <= cell.frequency <= 1.0 for cell in cells)

    def test_group_floor_respected(self, study):
        assert study.figure2.min_group_sessions == 10


class TestFigure3:
    def test_series_present(self, study):
        labels = {series.label for series in study.figure3}
        assert "AOSP 4.4" in labels
        assert "iOS7" in labels
        assert "Aggregated Android root certs" in labels

    def test_offsets_match_table4(self, study):
        by_label = {series.label: series for series in study.figure3}
        rows = {row.category: row for row in study.table4}
        for label in ("AOSP 4.4", "Mozilla", "iOS7"):
            assert (
                abs(
                    by_label[label].zero_fraction
                    - rows[label].fraction_validating_nothing
                )
                < 1e-9
            )

    def test_aggregated_tracks_ios7(self, study):
        """§5.3: the aggregated Android set behaves like iOS7."""
        by_label = {series.label: series for series in study.figure3}
        assert (
            abs(
                by_label["Aggregated Android root certs"].zero_fraction
                - by_label["iOS7"].zero_fraction
            )
            < 0.05
        )

    def test_ecdfs_monotone(self, study):
        for series in study.figure3:
            ys = [y for _, y in series.points]
            assert ys == sorted(ys)
            assert ys[-1] == 1.0


class TestDatasetScale:
    def test_unique_certificates_near_314(self, study):
        """§4.1: 314 unique root certs (reduced scale loses some tail)."""
        assert 230 <= study.unique_certificates <= 314

    def test_report_renders(self, study):
        report = render_study_report(study)
        assert "Table 1" in report and "Figure 3" in report
        assert "CRAZY HOUSE" in report
        assert "Reality Mine" in report
