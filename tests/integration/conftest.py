"""Shared reduced-scale study for all integration tests."""

import pytest

from repro.analysis import StudyConfig, run_study


@pytest.fixture(scope="package")
def study():
    return run_study(StudyConfig(population_scale=0.15, notary_scale=0.2))
