"""End-to-end serve tests against a real (reduced-scale) study.

These prove the ISSUE's parity criteria on real data: the JSON export
is the single representation (text report renders from it byte-for-
byte), the HTTP endpoints serve exactly the export's sections, bodies
are byte-identical across repeated requests and across independently
built apps, and the LRU/metrics plumbing is visible over a real socket.
"""

import http.client
import json

import pytest

from repro import __version__
from repro.analysis.report import (
    render_report_from_json,
    render_study_report,
    to_json,
    to_json_bytes,
)
from repro.serve import Request, ServeApp, SnapshotHolder, StudySnapshot, StudyServer


@pytest.fixture(scope="module")
def snapshot(study):
    return StudySnapshot.from_result(study, generation=0)


@pytest.fixture()
def app(snapshot):
    return ServeApp(SnapshotHolder(snapshot))


class TestJsonExportParity:
    def test_text_report_renders_from_json_export(self, study):
        document = json.loads(to_json_bytes(to_json(study)))
        assert render_report_from_json(document) == render_study_report(study)

    def test_export_round_trips_canonically(self, study):
        body = to_json_bytes(to_json(study))
        assert to_json_bytes(json.loads(body)) == body

    def test_table_endpoints_serve_the_export_sections(self, app, study):
        export = to_json(study)
        for n in range(1, 7):
            response = app.handle(Request("GET", f"/v1/tables/{n}"))
            assert response.status == 200
            assert response.body == to_json_bytes(export["tables"][str(n)])
        for n in range(1, 4):
            response = app.handle(Request("GET", f"/v1/figures/{n}"))
            assert response.body == to_json_bytes(export["figures"][str(n)])

    def test_bodies_identical_across_independent_apps(self, snapshot, study):
        # Two apps over independently built snapshots of the same study:
        # same bytes, same ETags (the determinism criterion).
        other = ServeApp(SnapshotHolder(StudySnapshot.from_result(study, generation=0)))
        mine = ServeApp(SnapshotHolder(snapshot))
        for path in ("/v1/tables/2", "/v1/figures/3", "/v1/roots"):
            a = mine.handle(Request("GET", path))
            b = other.handle(Request("GET", path))
            assert a.body == b.body
            assert dict(a.headers)["ETag"] == dict(b.headers)["ETag"]


class TestRootAndSessionEndpoints:
    def test_roots_listing_covers_all_store_roots(self, app, study):
        listing = json.loads(app.handle(Request("GET", "/v1/roots")).body)
        assert listing["count"] == len(listing["roots"]) > 0
        fingerprints = [root["fingerprint"] for root in listing["roots"]]
        assert fingerprints == sorted(fingerprints)

    def test_root_detail_has_stores_and_validation_counts(self, app):
        listing = json.loads(app.handle(Request("GET", "/v1/roots")).body)
        aosp_root = next(
            root
            for root in listing["roots"]
            if any(store.startswith("aosp-") for store in root["stores"])
        )
        detail = json.loads(
            app.handle(
                Request("GET", f"/v1/roots/{aosp_root['fingerprint']}")
            ).body
        )
        assert detail["fingerprint"] == aosp_root["fingerprint"]
        assert detail["validated_total"] >= detail["validated_current"] >= 0
        assert isinstance(detail["seen_in_traffic"], bool)

    def test_session_diff_matches_study_diffs(self, app, study):
        diff = study.diffs[0]
        payload = json.loads(
            app.handle(
                Request("GET", f"/v1/sessions/{diff.session.session_id}/diff")
            ).body
        )
        assert payload["session_id"] == diff.session.session_id
        assert payload["additional_count"] == len(diff.additional)
        assert payload["missing_count"] == diff.missing_count


class TestOverHttp:
    @pytest.fixture()
    def server(self, app):
        server = StudyServer(app, port=0).start()
        yield server
        server.stop()

    def request(self, server, method, path, headers=None):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(method, path, headers=headers or {})
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    def test_health_and_every_table_over_the_wire(self, server, app, study):
        status, _, body = self.request(server, "GET", "/v1/health")
        assert status == 200
        health = json.loads(body)
        assert health["version"] == __version__
        assert health["snapshot"]["sessions"] == len(study.dataset.sessions)

        export = to_json(study)
        for n in range(1, 7):
            status, headers, body = self.request(server, "GET", f"/v1/tables/{n}")
            assert status == 200
            assert body == to_json_bytes(export["tables"][str(n)])
            assert headers["ETag"].startswith('"g0-')

    def test_etag_revalidation_over_the_wire(self, server):
        _, headers, first = self.request(server, "GET", "/v1/figures/1")
        status, headers2, body = self.request(
            server, "GET", "/v1/figures/1", {"If-None-Match": headers["ETag"]}
        )
        assert status == 304
        assert body == b""
        assert headers2["ETag"] == headers["ETag"]

    def test_repeated_requests_are_byte_identical_and_cached(self, server, app):
        bodies = {
            self.request(server, "GET", "/v1/tables/4")[2] for _ in range(5)
        }
        assert len(bodies) == 1
        metrics = json.loads(self.request(server, "GET", "/v1/metrics")[2])
        assert metrics["counters"]["serve.cache.hits"] >= 4
        # the metrics request renders before its own counter bump, so it
        # sees the 5 table requests but not itself.
        assert metrics["counters"]["serve.requests"] >= 5

    def test_query_strings_are_ignored_for_routing(self, server):
        status, _, body = self.request(server, "GET", "/v1/health?probe=1")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_head_requests_send_headers_only(self, server):
        status, headers, body = self.request(server, "HEAD", "/v1/tables/1")
        assert status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0
