"""Acceptance tests for the persistent storage backend (ISSUE criteria).

The disk backend is a pure representation change: the rendered study
report must be byte-identical between the in-memory and on-disk
backends, at any worker count, while the run's storage actually lands
on disk in sharded, integrity-enveloped segment files.
"""

from repro.analysis import StudyConfig, render_study_report, run_study

SCALE = dict(population_scale=0.15, notary_scale=0.2)


class TestByteIdenticalReports:
    def test_disk_backend_matches_in_memory(self, study, tmp_path_factory):
        storage = tmp_path_factory.mktemp("storage")
        disk = run_study(StudyConfig(storage_dir=str(storage), **SCALE))
        assert render_study_report(disk) == render_study_report(study)

    def test_disk_backend_parallel_matches_in_memory_serial(
        self, study, tmp_path_factory
    ):
        storage = tmp_path_factory.mktemp("storage-parallel")
        disk = run_study(
            StudyConfig(storage_dir=str(storage), workers=4, **SCALE)
        )
        assert render_study_report(disk) == render_study_report(study)


class TestStorageRunShape:
    def test_universe_lands_in_sharded_segments(self, tmp_path_factory):
        storage = tmp_path_factory.mktemp("storage-shape")
        result = run_study(
            StudyConfig(
                population_scale=0.05, notary_scale=0.1, storage_dir=str(storage)
            )
        )
        cert_segments = list((storage / "certs").glob("certs-*.seg"))
        shard_segments = list((storage / "shards").glob("shard-*.seg"))
        assert cert_segments, "content-addressed cert segments missing"
        # per-root sharding: many shard files, not one blob
        assert len(shard_segments) > 50
        gauges = result.telemetry.metrics["gauges"]
        assert gauges["storage.certs_certificates"] > 0
        assert gauges["storage.shards_shards"] == len(shard_segments)
        assert gauges["storage.interned_certificates"] > 0

    def test_storage_disables_build_cache(self, tmp_path_factory):
        storage = tmp_path_factory.mktemp("storage-bc")
        cache_dir = tmp_path_factory.mktemp("build-cache")
        result = run_study(
            StudyConfig(
                population_scale=0.05,
                notary_scale=0.05,
                storage_dir=str(storage),
                build_cache_dir=str(cache_dir),
            )
        )
        assert result.fastpath.build_cache == "off"
        assert list(cache_dir.iterdir()) == []
