"""Integration: a §8-hardened client against the paper's threat cases.

Composes all the extension machinery — CT requirement, revocation,
blacklist, scoped trust, audit — and shows each mechanism independently
defeating the threat the paper's default Android client fell to.
"""

import datetime

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.ctlog import CertificateLog, CtPolicy, attach_scts
from repro.tlssim import InterceptionProxy, TlsClient, TlsServer
from repro.tlssim.traffic import ServerIdentity
from repro.x509 import (
    CertificateBlacklist,
    CertificateBuilder,
    ChainVerifier,
    CrlBuilder,
    Name,
    RevocationChecker,
)
from repro.x509.chain import ValidationFailure

HOST = "secure.example.com"
NOW = datetime.datetime(2014, 4, 1)


@pytest.fixture(scope="module")
def world(factory, catalog, platform_stores, traffic):
    """A device store with an injected MITM root, plus a CT log and the
    legitimate server identity."""
    store = platform_stores.aosp["4.4"].copy("hardened-device", read_only=False)
    mitm_kp = generate_keypair(DeterministicRandom("hardened-mitm"))
    mitm_root = (
        CertificateBuilder()
        .subject(Name.build(CN="Injected MITM Root", O="Mallory"))
        .public_key(mitm_kp.public)
        .ca(True)
        .self_sign(mitm_kp.private)
    )
    store.add(mitm_root, system=True, source="app:Freedom")

    log = CertificateLog("hardened-log", seed="hardened-ct")
    ca_name = "Entrust Root CA"
    ca_kp = factory.keypair_for(ca_name)
    legit_precert = traffic.server_identity(HOST, ca_name).leaf
    sct = log.issue_sct(legit_precert)
    legit_leaf = attach_scts(legit_precert, [sct], ca_kp.private)
    legit_root = factory.root_certificate(catalog.by_name(ca_name))

    forged_kp = generate_keypair(DeterministicRandom("hardened-forged"))
    forged_leaf = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .issuer(mitm_root.subject)
        .public_key(forged_kp.public)
        .serial_number(13)
        .tls_server(HOST)
        .sign(mitm_kp.private, issuer_public_key=mitm_kp.public)
    )
    return {
        "store": store,
        "log": log,
        "mitm_root": mitm_root,
        "mitm_kp": mitm_kp,
        "legit_chain": (legit_leaf, legit_root),
        "forged_chain": (forged_leaf, mitm_root),
    }


class TestDefaultClientFalls:
    def test_android_default_accepts_the_mitm(self, world):
        """The paper's finding: chain-level validation trusts the forged
        chain because the injected root is in the store."""
        verifier = ChainVerifier(world["store"].certificates(), at=NOW)
        assert verifier.validate(list(world["forged_chain"]), HOST).trusted


class TestHardenedDefenses:
    def test_ct_requirement_rejects_unlogged_forgery(self, world):
        policy = CtPolicy({world["log"].name: world["log"].public_key})
        assert policy.check(world["legit_chain"][0])
        assert not policy.check(world["forged_chain"][0])

    def test_blacklist_kills_the_injected_root(self, world):
        blacklist = CertificateBlacklist()
        blacklist.ban_key(world["mitm_root"])
        verifier = ChainVerifier(
            world["store"].certificates(), at=NOW, blacklist=blacklist
        )
        result = verifier.validate(list(world["forged_chain"]), HOST)
        assert result.failure is ValidationFailure.BLACKLISTED
        assert verifier.validate(list(world["legit_chain"]), HOST).trusted

    def test_revocation_after_incident_response(self, world):
        """Once the forged leaf is discovered, the MITM 'CA' can be put
        on a CRL distributed by the platform."""
        crl = (
            CrlBuilder(world["mitm_root"].subject)
            .revoke(world["forged_chain"][0], at=NOW)
            .sign(
                world["mitm_kp"].private,
                this_update=NOW,
                next_update=NOW + datetime.timedelta(days=30),
            )
        )
        checker = RevocationChecker(at=NOW)
        checker.add_crl(crl, world["mitm_root"])
        verifier = ChainVerifier(
            world["store"].certificates(), at=NOW, revocation=checker
        )
        result = verifier.validate(list(world["forged_chain"]), HOST)
        assert result.failure is ValidationFailure.REVOKED

    def test_audit_flags_the_injection(self, world, platform_stores):
        from repro.audit import Severity, StoreAuditor

        auditor = StoreAuditor(platform_stores.aosp["4.4"])
        report = auditor.audit(world["store"])
        assert report.max_severity is Severity.CRITICAL

    def test_full_stack_hardened_handshake(self, world):
        """All defenses composed: forged chain rejected, legit accepted."""
        blacklist = CertificateBlacklist()
        blacklist.ban_key(world["mitm_root"])
        verifier = ChainVerifier(
            world["store"].certificates(), at=NOW, blacklist=blacklist
        )
        ct = CtPolicy({world["log"].name: world["log"].public_key})

        def hardened_verdict(chain):
            result = verifier.validate(list(chain), HOST)
            return result.trusted and ct.check(chain[0])

        assert hardened_verdict(world["legit_chain"])
        assert not hardened_verdict(world["forged_chain"])
