"""Integration: the claims module grades a reduced-scale study sanely."""

from repro.analysis.paper import (
    HEADLINES,
    TABLE1_SIZES,
    compare_study,
    render_claims,
)


class TestCompareStudy:
    def test_structural_claims_hold_at_any_scale(self, study):
        claims = {claim.name: claim for claim in compare_study(study)}
        for name in (
            "table1.sizes",
            "table2.device_set",
            "table3.ordering",
            "table3.near_equality",
            "table6.intercepted",
            "table6.whitelisted",
            "headline.missing_handsets",
            "headline.interceptions",
        ):
            assert claims[name].holds, name

    def test_fraction_claims_hold(self, study):
        claims = {claim.name: claim for claim in compare_study(study)}
        for name in (
            "headline.extended_fraction",
            "headline.rooted_fraction",
            "figure2.mozilla_and_ios7",
            "figure2.not_recorded",
            "table4.AOSP 4.4",
            "table4.iOS7",
        ):
            assert claims[name].holds, name

    def test_scaled_claims_respect_scale(self, study):
        claims = {claim.name: claim for claim in compare_study(study)}
        sessions = claims["headline.sessions"]
        assert sessions.holds
        assert sessions.measured < HEADLINES["sessions"] / 2  # 0.15 scale

    def test_majority_of_claims_hold(self, study):
        claims = compare_study(study)
        holding = sum(1 for claim in claims if claim.holds)
        assert holding / len(claims) > 0.9

    def test_render(self, study):
        text = render_claims(compare_study(study))
        assert "claims hold" in text
        assert "table1.sizes" in text

    def test_paper_constants_sane(self):
        assert sum(TABLE1_SIZES.values()) == 139 + 140 + 146 + 150 + 227 + 153
        assert HEADLINES["unique_certificates"] == 314
