"""Acceptance tests for the build-artifact cache in the study pipeline.

A study run with a warm build cache must render the byte-identical
report a cold run renders — the cache can only ever cost or save time.
Corrupt entries are quarantined and rebuilt; fault-injection runs
bypass the cache entirely (they must exercise the real ingest path).
"""

import pytest

from repro.analysis import StudyConfig, render_study_report, run_study
from repro.buildcache import MAGIC, BuildCache

SCALE = dict(population_scale=0.1, notary_scale=0.1)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("buildcache")


@pytest.fixture(scope="module")
def cold(cache_dir):
    return run_study(StudyConfig(build_cache_dir=str(cache_dir), **SCALE))


class TestColdWarmIdentity:
    def test_cold_run_populates_the_cache(self, cold, cache_dir):
        assert cold.fastpath is not None
        assert cold.fastpath.build_cache == "miss"
        assert list(cache_dir.glob("universe-*.bin"))

    def test_warm_run_is_byte_identical(self, cold, cache_dir):
        warm = run_study(StudyConfig(build_cache_dir=str(cache_dir), **SCALE))
        assert warm.fastpath is not None
        assert warm.fastpath.build_cache == "hit"
        assert render_study_report(warm) == render_study_report(cold)

    def test_uncached_run_is_byte_identical(self, cold):
        plain = run_study(StudyConfig(**SCALE))
        assert plain.fastpath is not None
        assert plain.fastpath.build_cache == "off"
        assert render_study_report(plain) == render_study_report(cold)

    def test_different_seed_misses(self, cold, cache_dir):
        other = run_study(
            StudyConfig(
                seed="a-different-universe",
                build_cache_dir=str(cache_dir),
                **SCALE,
            )
        )
        assert other.fastpath is not None
        assert other.fastpath.build_cache == "miss"
        assert render_study_report(other) != render_study_report(cold)


class TestCorruptionRecovery:
    def test_truncated_entry_rebuilds_identically(self, cold, cache_dir):
        # address exactly the cold run's entry (other tests add more)
        entry = BuildCache(cache_dir).path_for(
            "universe",
            {
                "seed": "tangled-mass",
                "population_scale": SCALE["population_scale"],
                "notary_scale": SCALE["notary_scale"],
                "key_bits": 512,
            },
        )
        assert entry.exists()
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(MAGIC) + 5])
        rebuilt = run_study(StudyConfig(build_cache_dir=str(cache_dir), **SCALE))
        assert rebuilt.fastpath is not None
        assert rebuilt.fastpath.build_cache == "miss"
        assert render_study_report(rebuilt) == render_study_report(cold)
        # the entry was re-published and is loadable again
        assert entry.exists() and entry.read_bytes() != blob[: len(MAGIC) + 5]


class TestFaultRunsBypassTheCache:
    def test_fault_injection_disables_caching(self, cache_dir):
        faulty = run_study(
            StudyConfig(
                build_cache_dir=str(cache_dir), fault_rate=0.05, **SCALE
            )
        )
        assert faulty.fastpath is not None
        assert faulty.fastpath.build_cache == "off"


class TestWorkerCountIdentity:
    def test_parallel_cold_build_matches_serial(self, cold, tmp_path):
        parallel = run_study(
            StudyConfig(
                workers=2, build_cache_dir=str(tmp_path / "pc"), **SCALE
            )
        )
        assert parallel.fastpath is not None
        assert parallel.fastpath.build_cache == "miss"
        assert render_study_report(parallel) == render_study_report(cold)
