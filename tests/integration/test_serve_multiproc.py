"""Multi-process serving over a real study: fleets, drains, fallbacks.

Every test forks a real :class:`~repro.serve.Supervisor` (the bench and
the CLI use the same entry point) over the shared reduced-scale study,
talks to it over loopback HTTP, and reaps it — asserting the two
properties the ISSUE cares most about:

* a coordinated SIGTERM **never truncates a response body** and the
  fleet exits 0, even when the signal lands mid-burst;
* worker fleets behave the same whether the kernel balances them via
  ``SO_REUSEPORT`` or they accept from one shared inherited listener
  (the fallback path, forced here via ``reuse_port=False``).
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.serve import ServeApp, SnapshotHolder, StudySnapshot, Supervisor

DRAIN_EXIT_DEADLINE = 30.0


@pytest.fixture(scope="module")
def snapshot(study):
    return StudySnapshot.from_result(study, generation=0)


def _fork_fleet(snapshot, *, transport, processes, reuse_port=None, reloader=None):
    """Fork a supervisor fleet; returns (pid, port)."""
    app = ServeApp(SnapshotHolder(snapshot), capacity=64, reloader=reloader)
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # the supervisor: never returns into pytest
        os.close(read_fd)
        status = 1
        try:
            status = Supervisor(
                app,
                processes=processes,
                transport=transport,
                reuse_port=reuse_port,
                notify_fd=write_fd,
            ).run_forever()
        finally:
            os._exit(status)
    os.close(write_fd)
    line = b""
    while not line.endswith(b"\n"):
        chunk = os.read(read_fd, 64)
        if not chunk:
            raise RuntimeError("supervisor died before announcing its port")
        line += chunk
    os.close(read_fd)
    return pid, int(line.split()[1])


def _reap(pid: int) -> int:
    """waitpid with a deadline (the fleet must not wedge the suite)."""
    deadline = time.monotonic() + DRAIN_EXIT_DEADLINE
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.05)
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    raise AssertionError("supervisor did not exit within the drain deadline")


def _get(port: int, path: str, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _worker_pids(port: int, want: int, attempts: int = 80) -> set[int]:
    """Fresh connections until /v1/metrics has shown *want* worker pids."""
    pids: set[int] = set()
    for _ in range(attempts):
        if len(pids) >= want:
            break
        try:
            status, _, body = _get(port, "/v1/metrics")
        except (OSError, http.client.HTTPException):
            # a connection balanced onto a just-killed worker resets;
            # the supervisor is restarting it — keep sampling.
            time.sleep(0.05)
            continue
        if status == 200:
            pids.add(int(json.loads(body)["gauges"].get("serve.worker.pid", 0)))
    return pids


def _post(port: int, path: str):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("POST", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _sample_worker(port: int):
    """One keep-alive connection → (pid, health generation, table-1 ETag).

    All three requests ride the same connection, so they are answered by
    the same worker — the only way to pair a pid with the generation and
    ETag that worker is actually serving.
    """
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", "/v1/metrics")
        response = connection.getresponse()
        pid = int(json.loads(response.read())["gauges"]["serve.worker.pid"])
        connection.request("GET", "/v1/health")
        response = connection.getresponse()
        generation = json.loads(response.read())["snapshot"]["generation"]
        connection.request("GET", "/v1/tables/1")
        response = connection.getresponse()
        response.read()
        return pid, generation, response.getheader("ETag")
    finally:
        connection.close()


class TestFleetReloadConsistency:
    """One ``POST /admin/reload`` must move the *whole* fleet.

    Regression for the pre-broadcast behaviour where a reload swapped
    only the worker that happened to answer the POST, leaving the rest
    of the fleet serving the old generation (and old ETags) forever.
    """

    def test_one_reload_updates_every_worker(self, snapshot, study):
        fresh = StudySnapshot.from_result(study, generation=1)
        pid, port = _fork_fleet(
            snapshot,
            transport="evloop",
            processes=2,
            reloader=lambda: fresh,
        )
        try:
            assert len(_worker_pids(port, want=2)) == 2
            status, _, body = _post(port, "/admin/reload")
            assert status == 200
            assert json.loads(body)["generation"] == 1

            # The broadcast lands asynchronously (a receiver thread per
            # worker); poll fresh connections until both workers have
            # been observed at the new generation.
            per_worker: dict[int, tuple[int, str]] = {}
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                try:
                    worker, generation, etag = _sample_worker(port)
                except (OSError, http.client.HTTPException):
                    time.sleep(0.05)
                    continue
                per_worker[worker] = (generation, etag)
                if len(per_worker) >= 2 and all(
                    generation == 1 for generation, _ in per_worker.values()
                ):
                    break
                time.sleep(0.05)

            assert len(per_worker) == 2, f"only sampled {per_worker}"
            generations = {g for g, _ in per_worker.values()}
            assert generations == {1}, f"fleet split across {per_worker}"
            etags = {etag for _, etag in per_worker.values()}
            assert len(etags) == 1, f"ETags diverged across workers: {etags}"
            assert "g1-" in etags.pop()
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0


class _BurstClient(threading.Thread):
    """Keep-alive GET loop that records any truncated response.

    A connection error *between* requests is the expected drain
    behaviour; a short read inside a response body is the bug the
    drain protocol exists to prevent.
    """

    def __init__(self, port: int, path: str, expected_body: bytes):
        super().__init__(daemon=True)
        self.port = port
        self.path = path
        self.expected_body = expected_body
        self.completed = 0
        self.truncated: list[str] = []

    def run(self) -> None:
        while True:
            try:
                connection = http.client.HTTPConnection(
                    "127.0.0.1", self.port, timeout=10
                )
                try:
                    while True:
                        connection.request("GET", self.path)
                        response = connection.getresponse()
                        body = response.read()
                        declared = int(response.getheader("Content-Length", -1))
                        if len(body) != declared or body != self.expected_body:
                            self.truncated.append(
                                f"{len(body)} bytes of {declared}"
                            )
                            return
                        self.completed += 1
                finally:
                    connection.close()
            except (OSError, http.client.HTTPException):
                # refused => the fleet is gone: a clean drain boundary.
                try:
                    probe = http.client.HTTPConnection(
                        "127.0.0.1", self.port, timeout=0.5
                    )
                    probe.request("GET", "/v1/health")
                    probe.getresponse().read()
                    probe.close()
                except (OSError, http.client.HTTPException):
                    return


@pytest.mark.parametrize(
    ("transport", "processes"),
    [("threaded", 1), ("evloop", 1), ("evloop", 2)],
)
class TestFleetServes:
    def test_sweep_etags_and_drain(self, snapshot, study, transport, processes):
        from repro.analysis.report import to_json, to_json_bytes

        export = to_json(study)
        pid, port = _fork_fleet(
            snapshot, transport=transport, processes=processes
        )
        try:
            status, headers, body = _get(port, "/v1/tables/1")
            assert status == 200
            assert body == to_json_bytes(export["tables"]["1"])
            etag = headers["ETag"]
            status, _, revalidated = _get(
                port, "/v1/tables/1", headers={"If-None-Match": etag}
            )
            assert status == 304 and revalidated == b""
            for path in ("/v1/roots", "/v1/figures/2", "/v1/health"):
                status, _, body = _get(port, path)
                assert status == 200 and body, path
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0


class TestReusePortFleet:
    def test_two_workers_both_answer(self, snapshot):
        pid, port = _fork_fleet(snapshot, transport="evloop", processes=2)
        try:
            pids = _worker_pids(port, want=2)
            assert len(pids) == 2, f"kernel never balanced to both: {pids}"
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0

    def test_crashed_worker_is_replaced(self, snapshot):
        pid, port = _fork_fleet(snapshot, transport="evloop", processes=2)
        try:
            victims = _worker_pids(port, want=2)
            assert victims
            os.kill(sorted(victims)[0], signal.SIGKILL)
            # backoff is 0.1s for the first restart; then the fleet
            # must again answer from two live workers.
            deadline = time.monotonic() + 15
            replaced = set()
            while time.monotonic() < deadline and len(replaced) < 2:
                replaced = _worker_pids(port, want=2, attempts=10)
            assert len(replaced) == 2
            assert replaced != victims
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0


class TestInheritedListenerFallback:
    def test_forced_fallback_serves_and_drains(self, snapshot):
        pid, port = _fork_fleet(
            snapshot, transport="evloop", processes=2, reuse_port=False
        )
        try:
            for _ in range(8):
                status, _, body = _get(port, "/v1/tables/3")
                assert status == 200 and body
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0

    def test_threaded_transport_on_shared_listener(self, snapshot):
        pid, port = _fork_fleet(
            snapshot, transport="threaded", processes=2, reuse_port=False
        )
        try:
            status, headers, body = _get(port, "/v1/roots")
            assert status == 200 and body
            assert "ETag" in headers
        finally:
            os.kill(pid, signal.SIGTERM)
        assert _reap(pid) == 0


@pytest.mark.parametrize(
    ("transport", "processes"),
    [("threaded", 1), ("evloop", 1), ("evloop", 2)],
)
class TestDrainMidBurst:
    def test_sigterm_mid_burst_never_truncates(
        self, snapshot, transport, processes
    ):
        pid, port = _fork_fleet(
            snapshot, transport=transport, processes=processes
        )
        _, _, expected = _get(port, "/v1/tables/1")
        clients = [
            _BurstClient(port, "/v1/tables/1", expected) for _ in range(4)
        ]
        for client in clients:
            client.start()
        # let the burst get going, then pull the rug.
        time.sleep(0.5)
        os.kill(pid, signal.SIGTERM)
        exit_code = _reap(pid)
        for client in clients:
            client.join(timeout=15)
        truncations = [t for client in clients for t in client.truncated]
        completed = sum(client.completed for client in clients)
        assert exit_code == 0, f"fleet exited {exit_code}"
        assert not truncations, truncations
        assert completed > 0, "burst never completed a single request"
