"""Report neutrality of the observability layer, end to end via the CLI.

The contract under test: ``repro study`` prints a byte-identical report
whether telemetry is exported or not, at any worker count, with fault
injection on or off — and the exported ``--trace``/``--metrics`` files
always pass the schema validators.
"""

import contextlib
import io
import json

import pytest

from repro.cli import main
from repro.obs.schema import validate_metrics, validate_trace

#: Small but non-trivial universe: every pipeline stage still runs.
SCALE_ARGS = ["--scale", "0.05", "--notary-scale", "0.05"]


def _run_study_cli(extra_args):
    """Run ``repro study`` in-process; returns ``(stdout, stderr)``."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(["study", *SCALE_ARGS, *extra_args])
    assert code == 0
    return out.getvalue(), err.getvalue()


@pytest.fixture(scope="module")
def cli_runs(tmp_path_factory):
    """One CLI study run per flag combination, shared across the tests."""
    exports = tmp_path_factory.mktemp("telemetry")
    runs = {}

    runs["plain_w1"] = _run_study_cli(["--workers", "1"])
    runs["traced_w1"] = _run_study_cli([
        "--workers", "1",
        "--trace", str(exports / "w1-trace.json"),
        "--metrics", str(exports / "w1-metrics.json"),
    ])
    runs["traced_w4"] = _run_study_cli([
        "--workers", "4",
        "--trace", str(exports / "w4-trace.json"),
        "--metrics", str(exports / "w4-metrics.json"),
    ])
    runs["fault_plain"] = _run_study_cli(["--workers", "1", "--fault-rate", "0.05"])
    runs["fault_traced"] = _run_study_cli([
        "--workers", "1", "--fault-rate", "0.05",
        "--trace", str(exports / "fault-trace.json"),
        "--metrics", str(exports / "fault-metrics.json"),
    ])
    runs["exports"] = exports
    return runs


class TestReportNeutrality:
    def test_trace_flags_leave_stdout_identical(self, cli_runs):
        assert cli_runs["traced_w1"][0] == cli_runs["plain_w1"][0]

    def test_worker_count_leaves_stdout_identical(self, cli_runs):
        assert cli_runs["traced_w4"][0] == cli_runs["plain_w1"][0]

    def test_fault_run_stdout_identical_with_and_without_flags(self, cli_runs):
        assert cli_runs["fault_traced"][0] == cli_runs["fault_plain"][0]

    def test_export_notices_go_to_stderr_only(self, cli_runs):
        stdout, stderr = cli_runs["traced_w1"]
        assert "wrote trace to" in stderr
        assert "wrote metrics to" in stderr
        assert "wrote trace to" not in stdout
        assert "wrote metrics to" not in stdout
        assert cli_runs["plain_w1"][1] == ""


class TestExportedTelemetry:
    @pytest.mark.parametrize("prefix", ["w1", "w4", "fault"])
    def test_exports_pass_schema_validation(self, cli_runs, prefix):
        exports = cli_runs["exports"]
        trace = json.loads((exports / f"{prefix}-trace.json").read_text())
        metrics = json.loads((exports / f"{prefix}-metrics.json").read_text())
        validate_trace(trace)
        validate_metrics(metrics)

    def test_trace_has_the_study_phase_tree(self, cli_runs):
        trace = json.loads(
            (cli_runs["exports"] / "w1-trace.json").read_text()
        )
        assert [span["name"] for span in trace["spans"]] == ["study"]
        phases = [child["name"] for child in trace["spans"][0]["children"]]
        assert phases == ["study.build", "study.analyze"]
        build = trace["spans"][0]["children"][0]
        assert "cache_hits" in build["attributes"]
        assert "cache_misses" in build["attributes"]

    def test_metrics_carry_the_fastpath_gauges(self, cli_runs):
        metrics = json.loads(
            (cli_runs["exports"] / "w1-metrics.json").read_text()
        )
        gauges = metrics["gauges"]
        for name in (
            "crypto.verify_cache.hits",
            "crypto.verify_cache.entries_delta",
            "study.workers",
            "study.quarantine.total",
        ):
            assert name in gauges
        assert metrics["counters"]["parallel.maps"] > 0

    def test_worker_count_is_telemetry_visible(self, cli_runs):
        exports = cli_runs["exports"]
        w1 = json.loads((exports / "w1-metrics.json").read_text())
        w4 = json.loads((exports / "w4-metrics.json").read_text())
        assert w1["gauges"]["study.workers"] == 1
        assert w4["gauges"]["study.workers"] == 4

    def test_fault_run_records_quarantine_telemetry(self, cli_runs):
        metrics = json.loads(
            (cli_runs["exports"] / "fault-metrics.json").read_text()
        )
        quarantined = metrics["gauges"]["study.quarantine.total"]
        fault_counters = {
            name: value
            for name, value in metrics["counters"].items()
            if name.startswith("faults.")
        }
        # the injector touched the corpus: whatever was quarantined must
        # be visible through the per-category counters too
        if quarantined:
            assert sum(
                value for name, value in fault_counters.items()
                if name.startswith("faults.quarantine.")
            ) >= quarantined
