"""Smoke tests: the runnable examples must stay runnable.

Only the fast examples run here (the study-scale ones are exercised by
their underlying APIs throughout the suite).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "117 identical / 130 equivalent" in out
        assert "trusted=True" in out

    def test_interception_demo(self):
        out = run_example("interception_demo.py")
        assert "12 intercepted / 9 relayed" in out
        assert "INTERCEPTED" in out

    def test_rooted_device_audit(self):
        out = run_example("rooted_device_audit.py")
        assert "CRAZY HOUSE" in out
        assert "intercepted=True" in out

    def test_app_validation_study(self):
        out = run_example("app_validation_study.py")
        assert "pinned                0/4" in out.replace("  ", " ") or "pinned" in out
        assert "accept_all" in out

    def test_transparency_demo(self):
        out = run_example("transparency_demo.py")
        assert "unvetted_authority" in out
        assert "consistency against the honest head: False" in out

    def test_render_figures(self, tmp_path):
        out = run_example(
            "render_figures.py", "--scale", "0.04", "--notary-scale", "0.2",
            "--out", str(tmp_path),
        )
        assert (tmp_path / "figure1.svg").exists()
        assert (tmp_path / "figure3.svg").exists()

    def test_full_study_small(self):
        out = run_example(
            "full_study.py", "--scale", "0.03", "--notary-scale", "0.2"
        )
        assert "Table 6" in out
        assert "Reality Mine" in out
