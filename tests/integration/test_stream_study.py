"""Streamed study == batch study, byte for byte.

The acceptance bar for the live engine: drain the same universe through
:class:`~repro.stream.StreamEngine` — any pacing, cadence, or worker
count — and the final report and JSON export must be byte-identical to
the one-shot batch pipeline over the same session set. Cadence
republishes mid-stream must not perturb the final state either (the
aggregation tail reads, never mutates, the incremental indexes).
"""

import pytest

from repro.analysis import StudyConfig, run_study
from repro.analysis.report import render_study_report, to_json, to_json_bytes
from repro.stream import Republisher, StreamConfig, StreamEngine, drain


def _stream_result(config: StreamConfig, *, every_sessions: int):
    engine = StreamEngine(config)
    republisher = Republisher(engine, every_sessions=every_sessions)
    snapshot = drain(engine, republisher, batch=128)
    return engine, republisher, snapshot


@pytest.mark.parametrize("workers", [1, 4])
def test_streamed_report_matches_batch(study, workers):
    engine, republisher, snapshot = _stream_result(
        StreamConfig(population_scale=0.15, notary_scale=0.2, workers=workers),
        every_sessions=800,
    )
    result = engine.result()
    assert render_study_report(result) == render_study_report(study)
    assert to_json_bytes(to_json(result)) == to_json_bytes(to_json(study))
    # the cadence actually fired mid-stream — this wasn't one big batch
    assert republisher.generation >= 2
    assert snapshot.generation == republisher.generation
    assert snapshot.meta["sessions"] == engine.total_sessions
    assert engine.ingested_sessions == engine.total_sessions


def test_streamed_report_matches_batch_with_faults():
    config = dict(
        population_scale=0.06, notary_scale=0.08, fault_rate=0.05
    )
    batch = run_study(StudyConfig(**config))
    engine, _, _ = _stream_result(
        StreamConfig(**config), every_sessions=300
    )
    result = engine.result()
    assert render_study_report(result) == render_study_report(batch)
    assert to_json_bytes(to_json(result)) == to_json_bytes(to_json(batch))


def test_snapshot_serves_streamed_sessions(study):
    engine, republisher, snapshot = _stream_result(
        StreamConfig(population_scale=0.15, notary_scale=0.2),
        every_sessions=1200,
    )
    # the final snapshot's session index covers every diffed session and
    # matches what a batch-built snapshot would serve.
    from repro.serve.snapshot import StudySnapshot

    batch_snapshot = StudySnapshot.from_result(
        study, generation=republisher.generation
    )
    assert snapshot.sessions == batch_snapshot.sessions
    assert snapshot.export == batch_snapshot.export
