"""Acceptance tests for the fast-path study engine (ISSUE criteria).

The memoized verification cache, the Notary's derived indexes and the
parallel executor are pure accelerations: the rendered study report
must be byte-identical with the fast path on or off and at any worker
count. ``diff_all`` must additionally survive wild data — a session
with an unknown Android version is quarantined, never a traceback.
"""

import pytest

from repro.analysis import (
    SessionDiffer,
    StudyConfig,
    render_study_report,
    run_study,
)
from repro.faults.quarantine import ErrorCategory
from repro.parallel import ParallelExecutor

SCALE = dict(population_scale=0.15, notary_scale=0.2)


class TestByteIdenticalReports:
    def test_parallel_run_matches_serial(self, study):
        parallel = run_study(StudyConfig(workers=4, **SCALE))
        assert render_study_report(parallel) == render_study_report(study)

    def test_fastpath_disabled_run_matches(self, study):
        plain = run_study(StudyConfig(fastpath=False, **SCALE))
        assert render_study_report(plain) == render_study_report(study)
        assert plain.fastpath is not None and not plain.fastpath.enabled
        # nothing was memoized on the uncached run
        assert plain.fastpath.notary_indexes == {
            "anchor_leaf_sets": 0,
            "count_memos": 0,
        }

    def test_fastpath_stats_captured_but_not_rendered(self, study):
        assert study.fastpath is not None
        assert study.fastpath.enabled
        assert study.fastpath.cache.hits > 0
        assert "verification cache" not in render_study_report(study)


class TestDiffAllResilience:
    FAULT_RATE = 0.05

    @pytest.fixture(scope="class")
    def faulty(self):
        return run_study(
            StudyConfig(
                population_scale=0.1,
                notary_scale=0.1,
                fault_rate=self.FAULT_RATE,
            )
        )

    def test_unknown_version_quarantined_not_raised(self, faulty):
        dataset, stores = faulty.dataset, faulty.stores
        victim = dataset.sessions[len(dataset.sessions) // 2]
        original_version = victim.os_version
        victim.os_version = "9.9"
        try:
            differ = SessionDiffer(stores.aosp)
            before = len(dataset.quarantine)
            diffs = differ.diff_all(dataset)
            assert len(diffs) == len(dataset.sessions) - 1
            assert all(diff.session is not victim for diff in diffs)
            added = dataset.quarantine.records[before:]
            assert len(added) == 1
            record = added[0]
            assert record.category is ErrorCategory.MALFORMED_RECORD
            assert record.where == f"session:{victim.session_id}/diff"
            assert "9.9" in record.detail
        finally:
            victim.os_version = original_version

    def test_parallel_diff_all_same_results_and_quarantine(self, faulty):
        dataset, stores = faulty.dataset, faulty.stores
        victim = dataset.sessions[3]
        original_version = victim.os_version
        victim.os_version = "0.1"
        try:
            differ = SessionDiffer(stores.aosp)
            before = len(dataset.quarantine)
            serial = differ.diff_all(dataset)
            serial_added = [r.where for r in dataset.quarantine.records[before:]]
            mark = len(dataset.quarantine)
            parallel = differ.diff_all(
                dataset, executor=ParallelExecutor(workers=4)
            )
            parallel_added = [r.where for r in dataset.quarantine.records[mark:]]
            assert [
                (d.session.session_id, d.aosp_count, d.additional, d.missing_count)
                for d in parallel
            ] == [
                (d.session.session_id, d.aosp_count, d.additional, d.missing_count)
                for d in serial
            ]
            assert parallel_added == serial_added
        finally:
            victim.os_version = original_version

    def test_clean_faulty_study_diffs_every_session(self, faulty):
        # no version corruption in the injector's repertoire: all diffed
        assert len(faulty.diffs) == len(faulty.dataset.sessions)
