"""Acceptance tests for the fault-injection study (ISSUE criteria).

A study with ``FaultInjector(rate=0.05, seed="tangled-mass")`` must
complete without raising, dead-letter every injected-corrupt record
under the right error category, keep the paper's tables stable against
the clean run, and reproduce its quarantine report byte for byte under
the same seed.
"""

import pytest

from repro.analysis import StudyConfig, render_study_report, run_study

FAULT_RATE = 0.05
SCALE = dict(population_scale=0.15, notary_scale=0.2)


@pytest.fixture(scope="module")
def faulty():
    return run_study(
        StudyConfig(fault_rate=FAULT_RATE, fault_seed="tangled-mass", **SCALE)
    )


class TestStudyCompletes:
    def test_injector_was_active(self, faulty):
        assert faulty.fault_injector is not None
        assert len(faulty.fault_injector.ledger) > 0

    def test_report_renders_with_health_section(self, faulty):
        report = render_study_report(faulty)
        assert "Ingest health" in report
        assert "quarantined" in report


class TestLedgerMatchesQuarantine:
    def test_every_expected_fault_quarantined_with_correct_category(
        self, faulty
    ):
        """Self-accounting: each injected fault that the injector expects
        to surface appears in the quarantine at the same location with
        the predicted error category."""
        by_where = faulty.combined_quarantine().by_where()
        mismatches = []
        for fault in faulty.fault_injector.ledger:
            if fault.expected_category is None:
                continue  # absorbed (e.g. recovered transient handshake)
            record = by_where.get(fault.where)
            if record is None:
                mismatches.append(f"{fault.where}: no quarantine record")
            elif record.category is not fault.expected_category:
                mismatches.append(
                    f"{fault.where}: expected {fault.expected_category.value},"
                    f" got {record.category.value}"
                )
        assert not mismatches, "\n".join(mismatches)

    def test_no_unexplained_quarantine_records(self, faulty):
        """Every dead-letter traces back to an injected fault."""
        planted = {f.where for f in faulty.fault_injector.ledger}
        strays = [
            r.where
            for r in faulty.combined_quarantine().records
            if r.where not in planted
        ]
        assert not strays, strays

    def test_health_counters_are_consistent(self, faulty):
        health = faulty.ingest_health
        assert health.quarantined_certificates > 0
        assert health.retried_probes >= health.recovered_probes > 0
        assert health.accepted_sessions == faulty.dataset.session_count


class TestPaperNumbersStable:
    def test_tables_match_clean_run(self, study, faulty):
        assert faulty.table1 == study.table1
        assert (
            faulty.table2.top_devices == study.table2.top_devices
        )
        assert (
            faulty.table2.top_manufacturers == study.table2.top_manufacturers
        )

    def test_session_accounting_identical(self, study, faulty):
        # Duplicates are quarantined whole and degraded sessions are
        # kept, so the session census is untouched by injection.
        assert faulty.dataset.session_count == study.dataset.session_count
        assert faulty.estimated_devices == study.estimated_devices
        assert (
            faulty.dataset.distinct_models() == study.dataset.distinct_models()
        )

    def test_observation_loss_equals_quarantined_certs(self, study, faulty):
        lost = (
            study.dataset.total_certificate_observations
            - faulty.dataset.total_certificate_observations
        )
        assert lost == faulty.dataset.health.quarantined_certificates

    def test_headline_fractions_within_tolerance(self, study, faulty):
        assert faulty.extended_fraction == pytest.approx(
            study.extended_fraction, abs=0.02
        )
        assert (
            faulty.rooted.rooted_session_fraction
            == study.rooted.rooted_session_fraction
        )


class TestDeterminism:
    def test_same_seed_byte_identical_quarantine_report(self, faulty):
        rerun = run_study(
            StudyConfig(fault_rate=FAULT_RATE, fault_seed="tangled-mass", **SCALE)
        )
        assert (
            rerun.combined_quarantine().report()
            == faulty.combined_quarantine().report()
        )
        assert rerun.fault_injector.ledger == faulty.fault_injector.ledger
        assert render_study_report(rerun) == render_study_report(faulty)
