"""Scenario studies: batch == stream, attribution finds the campaigns.

The acceptance bar for the abuse-scenario engine: with a fixed scenario
seed the campaign injection is part of the deterministic universe — the
batch pipeline at any worker count and the live stream engine must
produce byte-identical reports and JSON exports — and the attribution
pass scored against the injected ground truth must clear the quality
floor while leaving the benign control group unaccused. Without
``--scenarios`` nothing changes: the export carries no scenarios
section and matches a stock study byte for byte.
"""

import pytest

from repro.analysis import StudyConfig, run_study
from repro.analysis.report import render_study_report, to_json, to_json_bytes
from repro.scenarios import default_scenarios
from repro.stream import StreamConfig, StreamEngine

SCALES = dict(population_scale=0.15, notary_scale=0.2)
SCENARIO_SEED = "scenario-study-tests"

QUALITY_FLOOR = 0.9


@pytest.fixture(scope="module")
def scenario_study():
    return run_study(
        StudyConfig(
            **SCALES,
            scenarios=default_scenarios(),
            scenario_seed=SCENARIO_SEED,
        )
    )


class TestDeterminism:
    @pytest.mark.parametrize("workers", [4])
    def test_batch_workers_do_not_change_bytes(self, scenario_study, workers):
        parallel = run_study(
            StudyConfig(
                **SCALES,
                workers=workers,
                scenarios=default_scenarios(),
                scenario_seed=SCENARIO_SEED,
            )
        )
        assert to_json_bytes(to_json(parallel)) == to_json_bytes(
            to_json(scenario_study)
        )
        assert render_study_report(parallel) == render_study_report(
            scenario_study
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_stream_matches_batch(self, scenario_study, workers):
        engine = StreamEngine(
            StreamConfig(
                **SCALES,
                workers=workers,
                scenarios=default_scenarios(),
                scenario_seed=SCENARIO_SEED,
            )
        )
        while not engine.exhausted:
            engine.pump(512)
        result = engine.result()
        assert to_json_bytes(to_json(result)) == to_json_bytes(
            to_json(scenario_study)
        )
        assert render_study_report(result) == render_study_report(
            scenario_study
        )

    def test_scenarios_off_export_is_untouched(self, study):
        # `study` is the shared stock fixture: no scenarios configured.
        document = to_json(study)
        assert "scenarios" not in document
        assert study.scenarios is None
        assert study.fleet_audit is None
        assert "Abuse scenarios" not in render_study_report(study)


class TestAttributionQuality:
    def test_score_clears_the_floor(self, scenario_study):
        score = to_json(scenario_study)["scenarios"]["score"]
        assert score["precision"] >= QUALITY_FLOOR
        assert score["recall"] >= QUALITY_FLOOR
        assert score["false_positives"] == 0

    def test_every_malicious_campaign_recovered(self, scenario_study):
        fleet = scenario_study.scenarios
        attributed = {
            fingerprint
            for campaign in scenario_study.attribution.campaigns
            if campaign.kind in ("on-path-proxy", "ca-injection")
            for fingerprint in campaign.root_fingerprints
        }
        for truth in fleet.malicious:
            if truth.root_fingerprints:
                assert set(truth.root_fingerprints) & attributed

    def test_control_group_attributed_as_authorized(self, scenario_study):
        fleet = scenario_study.scenarios
        (benign,) = fleet.benign
        authorized = {
            fingerprint
            for campaign in scenario_study.attribution.campaigns
            if campaign.kind == "authorized-proxy"
            for fingerprint in campaign.root_fingerprints
        }
        assert set(benign.root_fingerprints) <= authorized

    def test_whitelist_defeats_and_pin_saves_observed(self, scenario_study):
        # the no-whitelist proxy hits pinned endpoints: pins save the
        # stock devices, the pin-bypassing vulnerable app gets defeated.
        campaigns = scenario_study.attribution.campaigns
        assert sum(c.pinning_saved for c in campaigns) > 0
        assert sum(c.whitelist_defeated for c in campaigns) > 0

    def test_fleet_audit_flags_injected_anchor(self, scenario_study):
        fleet_audit = scenario_study.fleet_audit
        assert fleet_audit is not None
        assert fleet_audit.findings_by_rule["app-installed-root"] >= 1
        injection = next(
            campaign
            for campaign in scenario_study.scenarios.campaigns
            if campaign.spec.family == "ca-injection"
        )
        critical = set(fleet_audit.critical_device_ids)
        assert set(injection.device_ids) <= critical


class TestRenderRoundTrip:
    def test_report_renders_scenario_section(self, scenario_study):
        text = render_study_report(scenario_study)
        assert "Abuse scenarios" in text
        assert "precision" in text

    def test_render_from_json_round_trips(self, scenario_study):
        import json

        from repro.analysis.report import render_report_from_json

        document = json.loads(to_json_bytes(to_json(scenario_study)))
        assert render_report_from_json(document) == render_study_report(
            scenario_study
        )


class TestServedScenarioEndpoints:
    @pytest.fixture(scope="class")
    def snapshot(self, scenario_study):
        from repro.serve.snapshot import StudySnapshot

        return StudySnapshot.from_result(scenario_study)

    def test_interceptions_payload(self, snapshot, scenario_study):
        payload = snapshot.interceptions_payload()
        assert payload["count"] == len(scenario_study.attribution.campaigns)
        first = payload["campaigns"][0]
        detail = snapshot.interception_payload(first["campaign_id"])
        assert detail["organization"] == first["organization"]
        assert snapshot.interception_payload("00" * 32) is None

    def test_scenarios_payload_enabled(self, snapshot):
        payload = snapshot.scenarios_payload()
        assert payload["enabled"] is True
        assert payload["score"]["precision"] >= QUALITY_FLOOR

    def test_stock_snapshot_scenarios_disabled(self, study):
        from repro.serve.snapshot import StudySnapshot

        payload = StudySnapshot.from_result(study).scenarios_payload()
        assert payload == {"enabled": False}
