"""Shared fixtures: one PKI universe per test session.

Building the full platform stores needs ~350 RSA keypairs (~6 s), so the
factory, stores and a reduced-scale Notary are session-scoped and shared
by every test module that needs them.
"""

import pytest

from repro.notary import build_notary
from repro.rootstore import CertificateFactory, build_platform_stores
from repro.rootstore.catalog import default_catalog
from repro.tlssim import TlsTrafficGenerator


@pytest.fixture(scope="session")
def factory():
    """The session-wide certificate factory (fixed seed)."""
    return CertificateFactory(seed="test-universe")


@pytest.fixture(scope="session")
def catalog():
    """The default calibrated CA catalog."""
    return default_catalog()


@pytest.fixture(scope="session")
def platform_stores(factory, catalog):
    """AOSP 4.1-4.4, Mozilla and iOS7 stores."""
    return build_platform_stores(factory, catalog)


@pytest.fixture(scope="session")
def traffic(factory, catalog):
    """A traffic generator at reduced scale for fast tests."""
    return TlsTrafficGenerator(factory, catalog, scale=0.2)


@pytest.fixture(scope="session")
def notary(factory, catalog):
    """A Notary built from fifth-scale traffic (the smallest scale at
    which Table 3's orderings survive integer rounding)."""
    return build_notary(factory, catalog, scale=0.2)
