"""Tests for OTA updates and store-evolution analysis."""

import pytest

from repro.analysis.evolution import classify_additions, store_changelog
from repro.android import DeviceSpec, FirmwareBuilder, FreedomLikeApp
from repro.android.ota import OtaUpdater, backport_certificate
from repro.rootstore.diff import diff_stores


@pytest.fixture(scope="module")
def firmware(factory, catalog):
    return FirmwareBuilder(factory, catalog)


@pytest.fixture(scope="module")
def updater(firmware):
    return OtaUpdater(firmware)


def fresh_device(firmware, *, rooted=False, branded=False, version="4.1"):
    spec = DeviceSpec("SAMSUNG", "Galaxy SIII", version, "T-MOBILE(US)")
    return firmware.provision(spec, branded=branded, rooted=rooted)


class TestOtaUpdate:
    def test_system_store_replaced(self, firmware, updater):
        device = fresh_device(firmware)
        result = updater.update(device, "4.4", branded=False)
        assert device.spec.os_version == "4.4"
        assert len(device.store) == 150
        assert result.system_roots_added == 11  # 150 - 139
        assert result.system_roots_removed == 0

    def test_user_certs_survive(self, firmware, updater, factory, catalog):
        device = fresh_device(firmware)
        user_cert = factory.root_certificate(catalog.by_name("Self-Signed VPN Root 3"))
        device.user_add_certificate(user_cert)
        result = updater.update(device, "4.2", branded=False)
        assert user_cert in device.store
        assert result.preserved_user_certs == (user_cert,)
        assert device.store.entry_for(user_cert).source == "user"

    def test_app_injected_roots_wiped(self, firmware, updater, factory, catalog):
        device = fresh_device(firmware, rooted=True)
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.install_app(FreedomLikeApp(ca_certificate=crazy))
        assert crazy in device.store
        result = updater.update(device, "4.3", branded=False)
        assert crazy not in device.store
        assert result.wiped_app_certs == (crazy,)

    def test_root_access_lost(self, firmware, updater):
        device = fresh_device(firmware, rooted=True)
        result = updater.update(device, "4.2", branded=False)
        assert result.unrooted
        assert not device.rooted

    def test_root_preserving_update(self, firmware, updater):
        device = fresh_device(firmware, rooted=True)
        result = updater.update(device, "4.2", branded=False, preserves_root=True)
        assert not result.unrooted
        assert device.rooted

    def test_branded_update_keeps_vendor_profile(self, firmware, updater):
        device = fresh_device(firmware, branded=True)
        base = len(firmware.aosp.store_for("4.1"))
        assert len(device.store) > base
        updater.update(device, "4.3", branded=True)
        assert len(device.store) > len(firmware.aosp.store_for("4.3"))

    def test_downgrade_rejected(self, firmware, updater):
        device = fresh_device(firmware, version="4.3")
        with pytest.raises(ValueError, match="downgrade"):
            updater.update(device, "4.1")
        with pytest.raises(ValueError, match="unknown"):
            updater.update(device, "5.0")


class TestChangelog:
    def test_aosp_changelog(self, platform_stores):
        deltas = store_changelog(platform_stores.aosp)
        assert [d.net_growth for d in deltas] == [1, 6, 4]
        assert all(not d.removed for d in deltas)

    def test_changelog_names(self, platform_stores):
        deltas = store_changelog(platform_stores.aosp)
        assert deltas[0].from_name == "AOSP 4.1"
        assert deltas[0].to_name == "AOSP 4.2"


class TestBackportClassification:
    def test_sony_case(self, firmware, platform_stores, factory, catalog):
        """§5.1: a 4.1 device carrying a root from a newer AOSP version
        is a backport, not a foreign addition."""
        device = fresh_device(firmware)
        newer_root = factory.root_certificate(
            catalog.by_name("CA Disig Root R1")  # added in 4.3
        )
        backport_certificate(device, newer_root)
        foreign_root = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.store.add(foreign_root, system=True, source="firmware")

        diff = diff_stores(device.store, platform_stores.aosp["4.1"])
        provenance = classify_additions(
            diff.added, "4.1", platform_stores.aosp
        )
        assert provenance.backports == (newer_root,)
        assert provenance.foreign == (foreign_root,)

    def test_latest_version_has_no_backports(self, platform_stores, factory, catalog):
        addition = factory.root_certificate(catalog.by_name("CA Disig Root R1"))
        provenance = classify_additions([addition], "4.4", platform_stores.aosp)
        assert provenance.backports == ()
        assert provenance.foreign == (addition,)
