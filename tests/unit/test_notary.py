"""Unit tests for the Notary simulator."""

import pytest

from repro.notary import store_validation_count, validation_counts_by_root
from repro.notary.validation import fraction_validating_nothing
from repro.rootstore import RootStore


class TestRecords:
    def test_counts(self, notary):
        assert notary.total_certificates > notary.current_certificates > 0

    def test_roots_signing_traffic_are_recorded(self, notary, factory, catalog):
        profile = next(p for p in catalog.core if p.current_leaves > 0)
        root = factory.root_certificate(profile)
        assert notary.seen_in_traffic(root)
        assert notary.has_record(root)

    def test_offline_roots_not_recorded(self, notary, factory, catalog):
        """Figure 2's 'not recorded' class: FOTA/SUPL-style roots."""
        profile = catalog.by_name("Motorola FOTA Root CA")
        root = factory.root_certificate(profile)
        assert not notary.seen_in_traffic(root)
        assert not notary.has_record(root)

    def test_registration_creates_record_without_traffic(
        self, notary, factory, catalog
    ):
        profile = catalog.by_name("Sony Computer DNAS Root 05")
        root = factory.root_certificate(profile)
        assert not notary.has_record(root)
        notary.register_store(RootStore("tmp", [root]))
        assert notary.has_record(root)
        assert not notary.seen_in_traffic(root)


class TestValidationCounts:
    def test_per_root_count_matches_profile(self, notary, factory, catalog):
        # At scale 0.2 a profile with N current leaves yields int(N * 0.2).
        profile = next(p for p in catalog.core if p.current_leaves >= 50)
        root = factory.root_certificate(profile)
        count = notary.validated_by_root(root)
        assert count == int(profile.current_leaves * 0.2)

    def test_zero_weight_root_validates_nothing(self, notary, factory, catalog):
        profile = next(
            p
            for p in catalog.core
            if p.current_leaves == 0 and p.expired_leaves == 0
        )
        root = factory.root_certificate(profile)
        assert notary.validated_by_root(root) == 0

    def test_include_expired_increases_count(self, notary, factory, catalog):
        profile = next(p for p in catalog.extras if p.expired_leaves >= 2)
        root = factory.root_certificate(profile)
        current = notary.validated_by_root(root)
        total = notary.validated_by_root(root, include_expired=True)
        assert total > current

    def test_reissued_twin_validates_same_leaves(self, notary, factory, catalog):
        """§4.2: equivalent certs validate the same children."""
        profile = next(
            p for p in catalog.core if p.reissued_in_mozilla and p.current_leaves > 0
        )
        canonical = factory.root_certificate(profile)
        twin = factory.reissued_certificate(profile)
        assert notary.validated_by_root(canonical) == notary.validated_by_root(twin)

    def test_store_count_deduplicates_equivalents(self, notary, factory, catalog):
        profile = next(
            p for p in catalog.core if p.reissued_in_mozilla and p.current_leaves > 0
        )
        canonical = factory.root_certificate(profile)
        twin = factory.reissued_certificate(profile)
        single = store_validation_count(notary, RootStore("s", [canonical]))
        both = store_validation_count(notary, RootStore("b", [canonical, twin]))
        assert single == both

    def test_table3_ordering(self, notary, platform_stores):
        """Table 3's shape: iOS7 > AOSP 4.4 >= 4.3 >= 4.2 == 4.1 > Mozilla,
        all within a fraction of a percent of each other."""
        counts = {
            name: store_validation_count(notary, store)
            for name, store in {
                "Mozilla": platform_stores.mozilla,
                "iOS7": platform_stores.ios7,
                **{f"AOSP {v}": s for v, s in platform_stores.aosp.items()},
            }.items()
        }
        assert counts["iOS7"] > counts["AOSP 4.4"]
        assert counts["AOSP 4.4"] >= counts["AOSP 4.3"] >= counts["AOSP 4.1"]
        assert counts["AOSP 4.2"] == counts["AOSP 4.1"]
        assert counts["AOSP 4.1"] > counts["Mozilla"]
        spread = max(counts.values()) - min(counts.values())
        assert spread / max(counts.values()) < 0.03

    def test_validation_counts_by_root_helper(self, notary, platform_stores):
        roots = platform_stores.aosp["4.1"].certificates()[:10]
        counts = validation_counts_by_root(notary, roots)
        assert len(counts) == 10
        assert all(count >= 0 for count in counts)


class TestIntermediateResolution:
    def test_big_ca_counts_resolve_through_intermediate(
        self, notary, factory, traffic, catalog
    ):
        """Leaves issued via an intermediate still count for the root."""
        profile = next(p for p in catalog.core if p.current_leaves >= 50)
        root = factory.root_certificate(profile)
        assert traffic.intermediate_for(profile) is not None
        assert notary.validated_by_root(root) == int(profile.current_leaves * 0.2)

    def test_intermediate_itself_observed(self, notary, traffic, catalog):
        profile = next(p for p in catalog.core if p.current_leaves >= 50)
        intermediate, _ = traffic.intermediate_for(profile)
        assert notary.seen_in_traffic(intermediate)

    def test_intermediate_validates_its_leaves(self, notary, traffic, catalog):
        """Querying the intermediate directly also finds its leaves."""
        profile = next(p for p in catalog.core if p.current_leaves >= 50)
        intermediate, _ = traffic.intermediate_for(profile)
        assert notary.validated_by_root(intermediate) == int(
            profile.current_leaves * 0.2
        )


class TestSessionVolume:
    def test_sessions_exceed_certificates(self, notary):
        """Popular leaves carry many sessions (the 66 B-vs-1.9 M gap)."""
        assert notary.total_sessions > notary.total_certificates
        assert notary.current_sessions <= notary.total_sessions

    def test_session_coverage_exceeds_cert_coverage(self, notary, platform_stores):
        """§5.3: the store-validated subset covers *sessions* even better
        than certificates, because popular leaves chain to public CAs."""
        store = platform_stores.mozilla
        cert_coverage = (
            notary.validated_by_store(store) / notary.current_certificates
        )
        session_coverage = (
            notary.sessions_validated_by_store(store) / notary.current_sessions
        )
        assert session_coverage > cert_coverage

    def test_session_count_weighting(self, traffic, catalog):
        profile = next(p for p in catalog.core if p.current_leaves >= 50)
        leaves = [l for l in traffic.leaves_for_profile(profile) if not l.expired]
        # Leaf popularity is skewed: the first leaf dominates.
        assert leaves[0].session_count > leaves[-1].session_count
        assert all(l.session_count >= 1 for l in leaves)


class TestFractionValidatingNothing:
    def test_aosp44_offset(self, notary, platform_stores):
        """Table 4: ~23% of AOSP 4.4 roots validate nothing."""
        frac = fraction_validating_nothing(
            notary, platform_stores.aosp["4.4"].certificates()
        )
        assert 0.18 <= frac <= 0.28

    def test_ios7_offset(self, notary, platform_stores):
        """Table 4: ~41% for iOS7 (the bloat signal)."""
        frac = fraction_validating_nothing(
            notary, platform_stores.ios7.certificates()
        )
        assert 0.35 <= frac <= 0.47

    def test_ios7_worse_than_mozilla(self, notary, platform_stores):
        ios7 = fraction_validating_nothing(notary, platform_stores.ios7.certificates())
        mozilla = fraction_validating_nothing(
            notary, platform_stores.mozilla.certificates()
        )
        assert ios7 > mozilla

    def test_empty_rejected(self, notary):
        with pytest.raises(ValueError):
            fraction_validating_nothing(notary, [])

    def test_include_expired_is_forwarded(self, notary, platform_stores):
        """Regression: the keyword used to be silently ignored. Counting
        expired leaves too can only shrink the validate-nothing set."""
        roots = platform_stores.ios7.certificates()
        current_only = fraction_validating_nothing(notary, roots)
        with_expired = fraction_validating_nothing(
            notary, roots, include_expired=True
        )
        assert with_expired <= current_only
        # per-root ground truth: identical to the underlying counts
        counts = validation_counts_by_root(notary, roots, include_expired=True)
        assert with_expired == sum(1 for c in counts if c == 0) / len(counts)
