"""Unit tests for the scenario spec layer and the campaign engine."""

from pathlib import Path

import pytest

from repro.android.population import PopulationConfig, PopulationGenerator
from repro.scenarios import (
    FAMILIES,
    ScenarioEngine,
    ScenarioError,
    ScenarioSpec,
    apply_scenarios,
    default_scenarios,
    load_specs,
    parse_specs,
)
from repro.x509.fingerprint import api_fingerprint

EXAMPLE_SPEC = Path(__file__).parents[2] / "examples" / "scenarios.json"


class TestScenarioSpec:
    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="unknown family"):
            ScenarioSpec(name="x", family="sideload").validate()

    def test_penetration_bounds(self):
        for bad in (0.0, -0.2, 1.5):
            with pytest.raises(ScenarioError, match="penetration"):
                ScenarioSpec(
                    name="x", family="ca-injection", penetration=bad
                ).validate()
        ScenarioSpec(name="x", family="ca-injection", penetration=1.0).validate()

    def test_unknown_modes_rejected(self):
        with pytest.raises(ScenarioError, match="regeneration"):
            ScenarioSpec(
                name="x", family="interception-proxy", regeneration="hourly"
            ).validate()
        with pytest.raises(ScenarioError, match="whitelist"):
            ScenarioSpec(
                name="x", family="interception-proxy", whitelist="banks"
            ).validate()

    def test_profile_only_for_vulnerable_app(self):
        with pytest.raises(ScenarioError, match="profile"):
            ScenarioSpec(
                name="x", family="interception-proxy", profile="accept-all"
            ).validate()
        with pytest.raises(ScenarioError, match="trust profile"):
            ScenarioSpec(
                name="x", family="vulnerable-app", profile="made-up"
            ).validate()

    def test_round_trip(self):
        for spec in default_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="unknown field"):
            ScenarioSpec.from_dict(
                {"name": "x", "family": "ca-injection", "budget": 9}
            )

    def test_parse_rejects_duplicate_names(self):
        entry = {"name": "twin", "family": "ca-injection"}
        with pytest.raises(ScenarioError, match="duplicate"):
            parse_specs([entry, dict(entry)])

    def test_parse_accepts_bare_list_and_wrapper(self):
        entry = {"name": "solo", "family": "ca-injection"}
        assert parse_specs([entry]) == parse_specs({"scenarios": [entry]})
        with pytest.raises(ScenarioError, match="scenarios"):
            parse_specs({"campaigns": []})

    def test_load_specs_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_specs(str(path))

    def test_example_file_is_the_default_set(self):
        assert load_specs(str(EXAMPLE_SPEC)) == default_scenarios()

    def test_default_set_covers_every_family(self):
        families = {spec.family for spec in default_scenarios()}
        assert families == set(FAMILIES)


@pytest.fixture
def population(factory, catalog):
    """A fresh small population (the engine mutates it in place)."""
    return PopulationGenerator(
        PopulationConfig(seed="scenario-tests", scale=0.05), factory, catalog
    ).generate()


def _truth(fleet, name):
    return next(c for c in fleet.campaigns if c.spec.name == name)


def _devices(population, device_ids):
    wanted = set(device_ids)
    return [
        r.device for r in population.records if r.device.device_id in wanted
    ]


class TestScenarioEngine:
    def test_duplicate_names_rejected(self):
        spec = ScenarioSpec(name="twin", family="ca-injection")
        with pytest.raises(ScenarioError, match="unique"):
            ScenarioEngine((spec, spec), seed="s")

    def test_apply_is_deterministic(self, factory, catalog):
        def run():
            population = PopulationGenerator(
                PopulationConfig(seed="scenario-tests", scale=0.05),
                factory,
                catalog,
            ).generate()
            return ScenarioEngine(default_scenarios(), seed="det").apply(
                population
            )

        assert run().to_json() == run().to_json()

    def test_records_never_reordered(self, population):
        before = [
            (r.device.device_id, r.session_count) for r in population.records
        ]
        apply_scenarios(population, default_scenarios(), "order")
        after = [
            (r.device.device_id, r.session_count) for r in population.records
        ]
        assert after == before

    def test_empty_specs_are_a_no_op(self, population):
        apps_before = sum(len(r.device.apps) for r in population.records)
        assert apply_scenarios(population, (), "noop") is None
        assert sum(len(r.device.apps) for r in population.records) == apps_before

    def test_interception_proxy_campaign(self, population):
        fleet = apply_scenarios(population, default_scenarios(), "proxy")
        truth = _truth(fleet, "dataviper")
        assert truth.device_ids and not truth.benign
        # shared regeneration: the whole campaign runs one PKI.
        assert len(truth.root_fingerprints) == 1
        for device in _devices(population, truth.device_ids):
            assert device.proxy is not None
            assert "dataviper" in device.app_names
            fingerprint = api_fingerprint(device.proxy.root_certificate)
            assert fingerprint == truth.root_fingerprints[0]

    def test_per_device_regeneration_mints_distinct_roots(self, population):
        spec = ScenarioSpec(
            name="hydra",
            family="interception-proxy",
            penetration=0.05,
            regeneration="per-device",
        )
        fleet = apply_scenarios(population, (spec,), "hydra-seed")
        truth = _truth(fleet, "hydra")
        assert len(truth.device_ids) >= 2
        assert len(truth.root_fingerprints) == len(truth.device_ids)

    def test_ca_injection_targets_rooted_devices(self, population):
        fleet = apply_scenarios(population, default_scenarios(), "inject")
        truth = _truth(fleet, "liberty-shadow")
        assert len(truth.root_fingerprints) == 1
        for device in _devices(population, truth.device_ids):
            assert device.rooted
            assert "liberty-shadow" in device.app_names
            store_prints = {
                api_fingerprint(c) for c in device.store.certificates()
            }
            assert truth.root_fingerprints[0] in store_prints

    def test_benign_proxy_is_authorized(self, population):
        fleet = apply_scenarios(population, default_scenarios(), "benign")
        truth = _truth(fleet, "initech-egress")
        assert truth.benign
        assert truth in fleet.benign and truth not in fleet.malicious
        for device in _devices(population, truth.device_ids):
            assert device.proxy is not None
            store_prints = {
                api_fingerprint(c) for c in device.store.certificates()
            }
            # the defining trait: the proxy root is provisioned into the
            # device's own store before traffic is routed through it.
            assert truth.root_fingerprints[0] in store_prints

    def test_vulnerable_app_overlays_proxied_devices(self, population):
        fleet = apply_scenarios(population, default_scenarios(), "overlay")
        weak = _truth(fleet, "weak-wallet")
        proxied = set(_truth(fleet, "dataviper").device_ids) | set(
            _truth(fleet, "nosy-carrier").device_ids
        )
        assert weak.device_ids
        assert set(weak.device_ids) <= proxied
        assert weak.root_fingerprints == ()  # mints nothing
        for device in _devices(population, weak.device_ids):
            assert device.trust_profile is not None
            assert device.trust_profile.bypasses_pin("www.google.com")

    def test_session_ids_match_the_collector_plan(self, population, factory):
        from repro.netalyzr import collect_dataset

        fleet = apply_scenarios(population, default_scenarios(), "plan")
        truth = _truth(fleet, "dataviper")
        dataset = collect_dataset(population, factory)
        by_id = {session.session_id: session for session in dataset.sessions}
        for session_id in truth.session_ids:
            assert "dataviper" in by_id[session_id].app_names

    def test_campaign_for_fingerprint(self, population):
        fleet = apply_scenarios(population, default_scenarios(), "lookup")
        truth = _truth(fleet, "liberty-shadow")
        found = fleet.campaign_for_fingerprint(truth.root_fingerprints[0])
        assert found is truth
        assert fleet.campaign_for_fingerprint("00" * 32) is None
