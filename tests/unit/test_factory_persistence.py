"""Tests for PKI-universe persistence."""

import json

import pytest

from repro.rootstore import CertificateFactory
from repro.rootstore.catalog import default_catalog
from repro.rootstore.persistence import load_factory, save_factory


@pytest.fixture(scope="module")
def warm_factory(catalog):
    factory = CertificateFactory(seed="persist-tests")
    for profile in catalog.core[:5]:
        factory.root_certificate(profile)
    reissued = next(p for p in catalog.core if p.reissued_in_mozilla)
    factory.reissued_certificate(reissued)
    return factory


class TestRoundTrip:
    def test_certificates_identical(self, warm_factory, catalog, tmp_path):
        path = save_factory(warm_factory, tmp_path / "universe.json")
        restored = load_factory(path)
        for profile in catalog.core[:5]:
            assert (
                restored.root_certificate(profile).encoded
                == warm_factory.root_certificate(profile).encoded
            )

    def test_reissues_identical(self, warm_factory, catalog, tmp_path):
        path = save_factory(warm_factory, tmp_path / "universe.json")
        restored = load_factory(path)
        profile = next(p for p in catalog.core if p.reissued_in_mozilla)
        assert (
            restored.reissued_certificate(profile).encoded
            == warm_factory.reissued_certificate(profile).encoded
        )

    def test_misses_regenerate_deterministically(
        self, warm_factory, catalog, tmp_path
    ):
        """Profiles not cached at save time still come out identical —
        generation falls back to the seed."""
        path = save_factory(warm_factory, tmp_path / "universe.json")
        restored = load_factory(path)
        uncached = catalog.core[10]
        fresh = CertificateFactory(seed="persist-tests")
        assert (
            restored.root_certificate(uncached).encoded
            == fresh.root_certificate(uncached).encoded
        )

    def test_keys_can_sign_after_restore(self, warm_factory, catalog, tmp_path):
        from repro.crypto.pkcs1 import sign, verify

        path = save_factory(warm_factory, tmp_path / "universe.json")
        restored = load_factory(path)
        name = catalog.core[0].name
        keypair = restored.keypair_for(name)
        signature = sign(keypair.private, "sha256", b"probe")
        verify(keypair.public, "sha256", b"probe", signature)


class TestValidation:
    def test_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 9}))
        with pytest.raises(ValueError, match="schema"):
            load_factory(path)

    def test_key_cert_mismatch_rejected(self, warm_factory, catalog, tmp_path):
        path = save_factory(warm_factory, tmp_path / "universe.json")
        payload = json.loads(path.read_text())
        names = list(payload["roots"])
        # Swap two certificates: they no longer match their keys.
        payload["roots"][names[0]], payload["roots"][names[1]] = (
            payload["roots"][names[1]],
            payload["roots"][names[0]],
        )
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="does not match"):
            load_factory(path)
