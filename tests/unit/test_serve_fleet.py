"""Unit tests for the fleet control protocol and restart backoff policy.

Everything here runs in-process: the framed channel is exercised over a
plain ``socketpair`` (one end played by the test standing in for the
supervisor), and the backoff/decay arithmetic is tested through the
pure helpers the supervisor's control loop calls — no forks, no
sockets bound.
"""

import socket
import threading
import time

import pytest

from repro.serve import SnapshotHolder, StudySnapshot
from repro.serve.fleet import (
    MSG_ERROR,
    MSG_RELOAD_REQUEST,
    MSG_SNAPSHOT,
    WorkerChannel,
    recv_frame,
    send_frame,
    snapshot_frame,
)
from repro.serve.supervisor import (
    BACKOFF_BASE_SECONDS,
    BACKOFF_CAP_SECONDS,
    HEALTHY_UPTIME_SECONDS,
    backoff_delay,
    next_restart_count,
)


def make_snapshot(generation: int = 0, marker: str = "v0") -> StudySnapshot:
    return StudySnapshot(
        {"tables": {"1": [["row", 1, marker]]}},
        meta={"generation": generation, "marker": marker},
        generation=generation,
    )


class TestBackoffDecay:
    def test_rapid_crashes_compound(self):
        count = 0
        for _ in range(5):
            count = next_restart_count(count, uptime=0.5)
        assert count == 5
        assert backoff_delay(count) == BACKOFF_BASE_SECONDS * 16

    def test_healthy_uptime_resets_the_slot(self):
        count = 7  # a worker deep into a historic crash loop
        count = next_restart_count(count, uptime=HEALTHY_UPTIME_SECONDS + 1)
        assert count == 1
        assert backoff_delay(count) == BACKOFF_BASE_SECONDS

    def test_boundary_uptime_counts_as_healthy(self):
        assert next_restart_count(9, uptime=HEALTHY_UPTIME_SECONDS) == 1

    def test_just_short_of_healthy_still_compounds(self):
        assert next_restart_count(3, uptime=HEALTHY_UPTIME_SECONDS - 0.01) == 4

    def test_daily_crasher_never_creeps_toward_the_cap(self):
        # The original bug: _restarts[index] only ever incremented, so a
        # worker crashing once a day pinned at max backoff forever.
        count = 0
        for _ in range(365):
            count = next_restart_count(count, uptime=86400.0)
            assert backoff_delay(count) == BACKOFF_BASE_SECONDS

    def test_delay_caps(self):
        assert backoff_delay(50) == BACKOFF_CAP_SECONDS

    def test_delay_is_sane_for_degenerate_counts(self):
        assert backoff_delay(0) == BACKOFF_BASE_SECONDS
        assert backoff_delay(1) == BACKOFF_BASE_SECONDS


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, MSG_ERROR, b"boom")
            assert recv_frame(right) == (MSG_ERROR, b"boom")
            send_frame(right, MSG_RELOAD_REQUEST)
            assert recv_frame(left) == (MSG_RELOAD_REQUEST, b"")
        finally:
            left.close()
            right.close()

    def test_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_snapshot_frame_carries_the_snapshot(self):
        left, right = socket.socketpair()
        try:
            left.sendall(snapshot_frame(make_snapshot(3, marker="v3")))
            kind, payload = recv_frame(right)
            assert kind == MSG_SNAPSHOT
            import pickle

            snapshot = pickle.loads(payload)
            assert snapshot.generation == 3
            assert snapshot.meta["marker"] == "v3"
        finally:
            left.close()
            right.close()


@pytest.fixture
def channel_pair():
    """(supervisor-side socket, started WorkerChannel, holder)."""
    supervisor_sock, worker_sock = socket.socketpair()
    holder = SnapshotHolder(make_snapshot(0, marker="v0"))
    channel = WorkerChannel(worker_sock, holder).start()
    yield supervisor_sock, channel, holder
    supervisor_sock.close()
    worker_sock.close()


class TestWorkerChannel:
    def test_broadcast_swaps_the_holder(self, channel_pair):
        supervisor_sock, channel, holder = channel_pair
        supervisor_sock.sendall(snapshot_frame(make_snapshot(1, marker="v1")))
        deadline = time.monotonic() + 5
        while holder.get().generation == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert holder.get().generation == 1
        assert holder.get().meta["marker"] == "v1"

    def test_request_reload_waits_for_the_broadcast(self, channel_pair):
        supervisor_sock, channel, holder = channel_pair

        def play_supervisor():
            assert recv_frame(supervisor_sock) == (MSG_RELOAD_REQUEST, b"")
            supervisor_sock.sendall(
                snapshot_frame(make_snapshot(2, marker="v2"))
            )

        actor = threading.Thread(target=play_supervisor, daemon=True)
        actor.start()
        fresh = channel.request_reload(timeout=10)
        actor.join(timeout=5)
        assert fresh.generation == 2
        assert holder.get() is fresh

    def test_error_frame_raises_in_the_requester(self, channel_pair):
        supervisor_sock, channel, holder = channel_pair

        def play_supervisor():
            assert recv_frame(supervisor_sock) == (MSG_RELOAD_REQUEST, b"")
            send_frame(supervisor_sock, MSG_ERROR, b"RuntimeError: rebuild blew up")

        actor = threading.Thread(target=play_supervisor, daemon=True)
        actor.start()
        with pytest.raises(RuntimeError, match="rebuild blew up"):
            channel.request_reload(timeout=10)
        actor.join(timeout=5)
        # the old snapshot stays live
        assert holder.get().generation == 0

    def test_timeout_raises_and_late_broadcast_still_lands(self, channel_pair):
        supervisor_sock, channel, holder = channel_pair
        with pytest.raises(TimeoutError):
            channel.request_reload(timeout=0.1)
        supervisor_sock.sendall(snapshot_frame(make_snapshot(5, marker="v5")))
        deadline = time.monotonic() + 5
        while holder.get().generation == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert holder.get().generation == 5

    def test_supervisor_eof_fails_fast(self, channel_pair):
        supervisor_sock, channel, holder = channel_pair
        supervisor_sock.close()
        with pytest.raises(RuntimeError, match="channel closed"):
            channel.request_reload(timeout=10)
