"""Tests for fleet-wide auditing."""

import pytest

from repro.analysis.classify import PresenceClassifier
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.audit import AuditPolicy, Severity
from repro.audit.fleet import audit_population, build_fleet_auditors


@pytest.fixture(scope="module")
def population(factory, catalog):
    config = PopulationConfig(seed="fleet-tests", scale=0.05)
    return PopulationGenerator(config, factory, catalog).generate()


@pytest.fixture(scope="module")
def summary(population, platform_stores, notary):
    classifier = PresenceClassifier(
        platform_stores.mozilla, platform_stores.ios7, notary
    )
    auditors = build_fleet_auditors(platform_stores, classifier=classifier)
    return audit_population(population, auditors)


class TestFleetAudit:
    def test_every_device_audited(self, population, summary):
        assert summary.device_count == len(population.records)

    def test_severity_partition(self, summary):
        assert sum(summary.devices_by_max_severity.values()) == summary.device_count

    def test_critical_devices_are_freedom_carriers(self, population, summary):
        freedom_ids = {
            r.device.device_id
            for r in population.records
            if any(app.name == "Freedom" for app in r.device.apps)
        }
        critical = set(summary.critical_device_ids)
        assert freedom_ids <= critical

    def test_critical_fraction_matches_rooted_exclusive_scale(self, summary):
        # Freedom carriers are a small slice of the fleet.
        assert 0.005 <= summary.critical_fraction <= 0.08

    def test_rule_counts(self, summary):
        assert summary.findings_by_rule["app-installed-root"] >= 1
        # Every device carries the expired Firmaprofesional anchor.
        assert summary.findings_by_rule["expired-anchor"] == summary.device_count

    def test_render(self, summary):
        text = summary.render()
        assert "Fleet audit" in text
        assert "app-installed-root" in text

    def test_policy_can_silence_fleet(self, population, platform_stores):
        lax = AuditPolicy(
            flag_unvetted_additions=False,
            flag_non_system_sources=False,
            flag_expired_anchors=False,
            flag_unconstrained_special_purpose=False,
        )
        auditors = build_fleet_auditors(platform_stores, policy=lax)
        summary = audit_population(population, auditors)
        assert summary.devices_by_max_severity[Severity.INFO] == summary.device_count

    def test_to_dict_shape(self, summary):
        document = summary.to_dict()
        assert document["device_count"] == summary.device_count
        assert (
            sum(document["devices_by_max_severity"].values())
            == summary.device_count
        )
        assert document["critical_fraction"] == summary.critical_fraction
        assert document["findings_by_rule"]["expired-anchor"] == summary.device_count
        assert set(document["devices_by_max_severity"]) <= {
            severity.name for severity in Severity
        }


class TestScenarioFleetAudit:
    """A population with scenario-injected CAs audits as compromised."""

    @pytest.fixture(scope="class")
    def injected(self, factory, catalog, platform_stores, notary):
        from repro.android.population import PopulationConfig, PopulationGenerator
        from repro.scenarios import ScenarioSpec, apply_scenarios

        population = PopulationGenerator(
            PopulationConfig(seed="fleet-scenario-tests", scale=0.05),
            factory,
            catalog,
        ).generate()
        fleet = apply_scenarios(
            population,
            (
                ScenarioSpec(
                    name="shadow-ca",
                    family="ca-injection",
                    penetration=0.5,
                    ca_name="SHADOW INJECTED CA",
                ),
            ),
            "fleet-audit-scenario",
        )
        classifier = PresenceClassifier(
            platform_stores.mozilla, platform_stores.ios7, notary
        )
        auditors = build_fleet_auditors(platform_stores, classifier=classifier)
        return fleet, audit_population(population, auditors)

    def test_injected_anchor_flagged_at_least_warning(self, injected):
        fleet, summary = injected
        (campaign,) = fleet.campaigns
        assert campaign.device_ids
        critical = set(summary.critical_device_ids)
        for device_id in campaign.device_ids:
            # Freedom-style injection rides the app: root path, which the
            # per-device audit flags at CRITICAL (>= WARNING).
            assert device_id in critical
        assert Severity.CRITICAL >= Severity.WARNING

    def test_injection_shows_in_rule_and_render(self, injected):
        _, summary = injected
        assert summary.findings_by_rule["app-installed-root"] >= 1
        text = summary.render()
        assert "Fleet audit" in text
        assert "app-installed-root" in text
