"""Unit tests for the crypto substrate (primes, RSA, PKCS#1)."""

import pytest

from repro.crypto import (
    DeterministicRandom,
    RsaPublicKey,
    SignatureError,
    derive_random,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    sign,
    verify,
)
from repro.crypto.hashes import digest, digest_size, hash_names
from repro.crypto.pkcs1 import digest_info, emsa_encode
from repro.crypto.rng import random_odd


class TestPrimes:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 997):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 100, 561, 1105, 997 * 991):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must fail Miller-Rabin.
        for n in (561, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^89 - 1 is a Mersenne prime.
        assert is_probable_prime(2**89 - 1)
        assert not is_probable_prime(2**89 - 3)

    def test_generate_prime_bit_length(self):
        rng = DeterministicRandom("prime-test")
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_prime(4, DeterministicRandom("x"))

    def test_deterministic(self):
        a = generate_prime(128, DeterministicRandom("seed-a"))
        b = generate_prime(128, DeterministicRandom("seed-a"))
        assert a == b


class TestRng:
    def test_same_label_same_stream(self):
        assert DeterministicRandom("x").random() == DeterministicRandom("x").random()

    def test_different_labels_differ(self):
        assert DeterministicRandom("x").random() != DeterministicRandom("y").random()

    def test_derive_random(self):
        rng = derive_random("study", "ca-key", "VeriSign")
        assert rng.label == "study/ca-key/VeriSign"

    def test_random_odd_properties(self):
        rng = DeterministicRandom("odd")
        for _ in range(50):
            value = random_odd(rng, 64)
            assert value % 2 == 1
            assert value.bit_length() == 64

    def test_random_odd_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_odd(DeterministicRandom("x"), 1)


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(DeterministicRandom("rsa-fixture"))

    def test_key_size(self, keypair):
        assert keypair.public.bits == 512
        assert keypair.public.byte_length == 64

    def test_raw_sign_verify_inverse(self, keypair):
        message = 0x1234567890ABCDEF
        assert keypair.public.raw_verify(keypair.private.raw_sign(message)) == message

    def test_raw_range_checks(self, keypair):
        with pytest.raises(ValueError):
            keypair.private.raw_sign(keypair.private.modulus)
        with pytest.raises(ValueError):
            keypair.public.raw_verify(-1)

    def test_der_roundtrip(self, keypair):
        der = keypair.public.to_der()
        assert RsaPublicKey.from_der(der) == keypair.public

    def test_from_der_rejects_negative_modulus(self):
        from repro.asn1 import encode_integer, encode_sequence

        bad = encode_sequence([encode_integer(-5), encode_integer(65537)])
        with pytest.raises(ValueError, match="positive"):
            RsaPublicKey.from_der(bad)

    def test_from_der_rejects_wrong_arity(self):
        from repro.asn1 import encode_integer, encode_sequence

        bad = encode_sequence([encode_integer(5)])
        with pytest.raises(ValueError, match="two INTEGERs"):
            RsaPublicKey.from_der(bad)

    def test_generation_deterministic(self):
        a = generate_keypair(DeterministicRandom("same"))
        b = generate_keypair(DeterministicRandom("same"))
        assert a.public == b.public

    def test_distinct_seeds_distinct_keys(self):
        a = generate_keypair(DeterministicRandom("k1"))
        b = generate_keypair(DeterministicRandom("k2"))
        assert a.public.modulus != b.public.modulus

    def test_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            generate_keypair(DeterministicRandom("x"), bits=513)

    def test_rejects_tiny_key(self):
        with pytest.raises(ValueError):
            generate_keypair(DeterministicRandom("x"), bits=64)


class TestHashes:
    def test_names(self):
        assert set(hash_names()) == {"md5", "sha1", "sha256", "sha384", "sha512"}

    def test_digest_sizes(self):
        assert digest_size("sha256") == 32
        assert digest_size("sha1") == 20

    def test_digest_known_value(self):
        assert digest("sha256", b"").hex().startswith("e3b0c44298fc1c14")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            digest("sha3-256", b"")
        with pytest.raises(ValueError):
            digest_size("whirlpool")


class TestPkcs1:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(DeterministicRandom("pkcs1-fixture"))

    def test_sign_verify(self, keypair):
        signature = sign(keypair.private, "sha256", b"to-be-signed")
        verify(keypair.public, "sha256", b"to-be-signed", signature)

    @pytest.mark.parametrize("hash_name", ["md5", "sha1", "sha256"])
    def test_all_hashes(self, keypair, hash_name):
        signature = sign(keypair.private, hash_name, b"data")
        verify(keypair.public, hash_name, b"data", signature)

    def test_tampered_data_fails(self, keypair):
        signature = sign(keypair.private, "sha256", b"data")
        with pytest.raises(SignatureError):
            verify(keypair.public, "sha256", b"DATA", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(sign(keypair.private, "sha256", b"data"))
        signature[10] ^= 0xFF
        with pytest.raises(SignatureError):
            verify(keypair.public, "sha256", b"data", bytes(signature))

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(DeterministicRandom("other-key"))
        signature = sign(keypair.private, "sha256", b"data")
        with pytest.raises(SignatureError):
            verify(other.public, "sha256", b"data", signature)

    def test_wrong_hash_fails(self, keypair):
        signature = sign(keypair.private, "sha256", b"data")
        with pytest.raises(SignatureError):
            verify(keypair.public, "sha1", b"data", signature)

    def test_wrong_length_fails(self, keypair):
        signature = sign(keypair.private, "sha256", b"data")
        with pytest.raises(SignatureError, match="length"):
            verify(keypair.public, "sha256", b"data", signature + b"\x00")

    def test_emsa_structure(self):
        em = emsa_encode("sha256", b"x", 64)
        assert em[:2] == b"\x00\x01"
        separator = em.index(b"\x00", 2)
        assert set(em[2:separator]) == {0xFF}
        assert em[separator + 1 :] == digest_info("sha256", b"x")

    def test_emsa_too_short_block(self):
        with pytest.raises(ValueError, match="too short"):
            emsa_encode("sha512", b"x", 64)

    def test_digest_info_parses_as_der(self):
        from repro.asn1 import decode

        info = decode(digest_info("sha1", b"abc"))
        assert info[0][0].as_oid().dotted == "1.3.14.3.2.26"
        assert len(info[1].as_octet_string()) == 20

    def test_digest_info_unknown_hash(self):
        with pytest.raises(ValueError):
            digest_info("crc32", b"x")
