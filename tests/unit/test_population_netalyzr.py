"""Tests for the population generator and Netalyzr collection (small scale)."""

import pytest

from repro.android.population import PopulationConfig, PopulationGenerator
from repro.netalyzr import NetalyzrClient, collect_dataset
from repro.netalyzr.session import DeviceTuple


@pytest.fixture(scope="module")
def population(factory, catalog):
    config = PopulationConfig(seed="pop-tests", scale=0.08)
    return PopulationGenerator(config, factory, catalog).generate()


@pytest.fixture(scope="module")
def dataset(population, factory, catalog):
    return collect_dataset(population, factory, catalog)


class TestPopulationShape:
    def test_session_scale(self, population):
        assert 800 <= population.total_sessions <= 2200

    def test_rooted_fraction(self, population):
        assert 0.17 <= population.rooted_session_fraction() <= 0.31

    def test_proxied_device_exists(self, population):
        device = population.proxied_device
        assert device is not None
        assert device.spec.model == "Nexus 7"
        assert device.spec.os_version == "4.4"
        assert device.proxy is not None

    def test_samsung_dominates(self, population):
        from collections import Counter

        counts = Counter(
            r.device.spec.manufacturer for r in population.records
        )
        assert counts["SAMSUNG"] == max(counts.values())

    def test_deterministic(self, factory, catalog):
        config = PopulationConfig(seed="determinism", scale=0.03)
        a = PopulationGenerator(config, factory, catalog).generate()
        b = PopulationGenerator(config, factory, catalog).generate()
        assert [r.device.device_id for r in a.records] == [
            r.device.device_id for r in b.records
        ]
        assert [len(r.device.store) for r in a.records] == [
            len(r.device.store) for r in b.records
        ]

    def test_crazy_house_on_rooted_only(self, population, factory, catalog):
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        carriers = [
            r.device for r in population.records if crazy in r.device.store
        ]
        assert carriers
        assert all(device.rooted for device in carriers)

    def test_roaming_devices_exist_and_are_rare(self, population):
        roamers = [
            r.device
            for r in population.records
            if r.device.attached_operator != r.device.spec.operator
        ]
        assert roamers  # 3% default roaming fraction
        assert len(roamers) / len(population.records) < 0.10
        for device in roamers:
            assert device.attached_operator != "WIFI"

    def test_droid_razr_is_mostly_verizon(self, population):
        razrs = [
            r.device
            for r in population.records
            if r.device.spec.model == "Droid RAZR HD"
        ]
        if len(razrs) >= 5:
            verizon = sum(1 for d in razrs if d.spec.operator == "VERIZON(US)")
            assert verizon / len(razrs) > 0.6

    def test_missing_cert_devices(self, population):
        missing = [
            r.device
            for r in population.records
            if len(r.device.store.certificates())
            < len(r.device.store.certificates(include_disabled=True))
        ]
        assert len(missing) == 5  # paper: exactly 5 handsets


class TestDatasetStatistics:
    def test_session_count_matches_plan(self, population, dataset):
        assert dataset.session_count == population.total_sessions

    def test_certificate_observations(self, dataset):
        # Every session contributes ~139-200 root certs.
        mean = dataset.total_certificate_observations / dataset.session_count
        assert 135 <= mean <= 210

    def test_device_estimate_is_lower_bound(self, population, dataset):
        assert dataset.estimated_devices() <= len(population.records)
        assert dataset.estimated_devices() > len(population.records) * 0.8

    def test_rooted_plus_nonrooted_partition(self, dataset):
        assert len(dataset.rooted_sessions()) + len(
            dataset.non_rooted_sessions()
        ) == dataset.session_count

    def test_sessions_for_filters(self, dataset):
        samsung41 = dataset.sessions_for(manufacturer="SAMSUNG", os_version="4.1")
        assert all(
            s.manufacturer == "SAMSUNG" and s.os_version == "4.1" for s in samsung41
        )

    def test_exactly_one_intercepted_session(self, dataset):
        intercepted = [
            s
            for s in dataset.sessions
            if any("Reality Mine" in p.chain_root_subject for p in s.probes)
        ]
        assert len(intercepted) == 1
        session = intercepted[0]
        assert session.model == "Nexus 7"
        assert session.os_version == "4.4"


class TestProbeSemantics:
    def test_probes_on_proxied_session(self, dataset):
        session = next(
            s
            for s in dataset.sessions
            if any("Reality Mine" in p.chain_root_subject for p in s.probes)
        )
        by_host = {p.hostport: p for p in session.probes}
        # Intercepted domain: forged chain, untrusted (proxy root not in store).
        yahoo = by_host["www.yahoo.com:443"]
        assert "Reality Mine" in yahoo.chain_root_subject
        assert not yahoo.validation.trusted
        # Whitelisted pinned domain: original chain, trusted, pins pass.
        facebook = by_host["www.facebook.com:443"]
        assert "Reality Mine" not in facebook.chain_root_subject
        assert facebook.validation.trusted
        assert facebook.pin_ok

    def test_clean_session_probes_all_trusted(self, factory, catalog, population):
        client = NetalyzrClient(factory, catalog)
        stock = next(
            r.device
            for r in population.records
            if not r.device.apps and r.device.proxy is None
        )
        session = client.run_session(stock, session_id=99999)
        assert session.probes
        assert all(p.validation.trusted and p.pin_ok for p in session.probes)

    def test_device_tuple_of(self, population):
        device = population.records[0].device
        device_tuple = DeviceTuple.of(device)
        assert device_tuple.model == device.spec.model
        assert device_tuple.os_version == device.spec.os_version
