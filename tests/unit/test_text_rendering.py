"""Tests for the ASN.1 dump and certificate text renderers."""

import pytest

from repro.asn1 import encode_integer, encode_null, encode_oid, encode_sequence
from repro.asn1.dump import dump_der
from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import CertificateBuilder, Name
from repro.x509.builder import make_root_certificate
from repro.x509.constraints import NameConstraints
from repro.x509.text import certificate_text


@pytest.fixture(scope="module")
def root():
    keypair = generate_keypair(DeterministicRandom("text-tests"))
    return make_root_certificate(
        keypair, Name.build(CN="Text Test CA", O="Text", C="US")
    ), keypair


class TestDumpDer:
    def test_simple_structure(self):
        der = encode_sequence([encode_integer(42), encode_null()])
        text = dump_der(der)
        assert "SEQUENCE" in text
        assert "INTEGER: 42" in text
        assert "NULL" in text

    def test_oid_rendered_dotted(self):
        text = dump_der(encode_sequence([encode_oid("2.5.4.3")]))
        assert "2.5.4.3" in text

    def test_certificate_dump(self, root):
        text = dump_der(root[0].encoded)
        assert "CONTEXT[0]" in text  # version tag
        assert "1.2.840.113549.1.1.11" in text  # sha256WithRSA
        assert "'Text Test CA'" in text
        assert "BIT_STRING" in text

    def test_offsets_monotone(self, root):
        offsets = [
            int(line.split(":")[0]) for line in dump_der(root[0].encoded).splitlines()
        ]
        assert offsets[0] == 0
        assert all(b >= a for a, b in zip(offsets, offsets[1:]) if b != 0)

    def test_big_integer_rendered_hex(self, root):
        text = dump_der(encode_integer(root[0].public_key.modulus))
        assert "0x" in text


class TestCertificateText:
    def test_core_fields(self, root):
        text = certificate_text(root[0])
        assert "Version: 3" in text
        assert "Issuer: C=US, O=Text, CN=Text Test CA" in text
        assert "RSA Public-Key: (512 bit)" in text
        assert "Exponent: 65537 (0x10001)" in text
        assert "CA:TRUE" in text
        assert "Certificate Sign" in text
        assert "SHA256 Fingerprint:" in text

    def test_leaf_extensions(self, root):
        certificate, keypair = root
        leaf_kp = generate_keypair(DeterministicRandom("text-leaf"))
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="www.text.example"))
            .issuer(certificate.subject)
            .public_key(leaf_kp.public)
            .serial_number(7)
            .tls_server("www.text.example", "*.text.example")
            .sign(keypair.private, issuer_public_key=keypair.public)
        )
        text = certificate_text(leaf)
        assert "DNS:www.text.example, DNS:*.text.example" in text
        assert "serverAuth" in text
        assert "Key Encipherment" in text

    def test_name_constraints_rendered(self, root):
        _, keypair = root
        constrained = (
            CertificateBuilder()
            .subject(Name.build(CN="Constrained CA"))
            .public_key(keypair.public)
            .ca(True)
            .add_extension(
                NameConstraints(
                    permitted=("gov.example",), excluded=("evil.example",)
                ).to_extension()
            )
            .self_sign(keypair.private)
        )
        text = certificate_text(constrained)
        assert "Permitted: DNS:gov.example" in text
        assert "Excluded: DNS:evil.example" in text

    def test_modulus_hex_wrapped(self, root):
        text = certificate_text(root[0])
        modulus_lines = [
            line for line in text.splitlines() if line.strip().count(":") >= 10
        ]
        assert modulus_lines  # wrapped hex present
