"""Unit tests for chain building and validation."""

import datetime

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import (
    CertificateBuilder,
    ChainValidationError,
    ChainVerifier,
    Name,
    build_chain,
)
from repro.x509.builder import make_root_certificate
from repro.x509.chain import ValidationFailure
from repro.x509.verify import is_signed_by


@pytest.fixture(scope="module")
def pki():
    """A small PKI: root -> intermediate -> leaf."""
    root_kp = generate_keypair(DeterministicRandom("chain-root"))
    root = make_root_certificate(root_kp, Name.build(CN="Chain Root", O="T", C="US"))
    inter_kp = generate_keypair(DeterministicRandom("chain-inter"))
    inter = (
        CertificateBuilder()
        .subject(Name.build(CN="Chain Intermediate", O="T", C="US"))
        .issuer(root.subject)
        .public_key(inter_kp.public)
        .serial_number(2)
        .ca(True, path_length=0)
        .sign(root_kp.private, issuer_public_key=root_kp.public)
    )
    leaf_kp = generate_keypair(DeterministicRandom("chain-leaf"))
    leaf = (
        CertificateBuilder()
        .subject(Name.build(CN="www.example.com", O="Example"))
        .issuer(inter.subject)
        .public_key(leaf_kp.public)
        .serial_number(3)
        .validity(datetime.datetime(2013, 1, 1), datetime.datetime(2015, 6, 1))
        .tls_server("www.example.com")
        .sign(inter_kp.private, issuer_public_key=inter_kp.public)
    )
    return {
        "root": root,
        "root_kp": root_kp,
        "inter": inter,
        "inter_kp": inter_kp,
        "leaf": leaf,
        "leaf_kp": leaf_kp,
    }


class TestBuildChain:
    def test_orders_out_of_order_chain(self, pki):
        path = build_chain(pki["leaf"], [pki["root"], pki["inter"]])
        assert path == [pki["leaf"], pki["inter"], pki["root"]]

    def test_drops_unrelated(self, pki):
        stray_kp = generate_keypair(DeterministicRandom("stray"))
        stray = make_root_certificate(stray_kp, Name.build(CN="Stray Root"))
        path = build_chain(pki["leaf"], [stray, pki["inter"]])
        assert stray not in path
        assert path == [pki["leaf"], pki["inter"]]

    def test_leaf_only(self, pki):
        assert build_chain(pki["leaf"], []) == [pki["leaf"]]

    def test_stops_at_self_signed(self, pki):
        path = build_chain(pki["leaf"], [pki["inter"], pki["root"], pki["root"]])
        assert path == [pki["leaf"], pki["inter"], pki["root"]]


class TestValidation:
    def test_happy_path(self, pki):
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([pki["leaf"], pki["inter"]], "www.example.com")
        assert result.trusted
        assert result.anchor == pki["root"]
        assert len(result.path) == 3

    def test_chain_without_root_presented(self, pki):
        """Server omits the root; store supplies the anchor."""
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([pki["leaf"], pki["inter"]])
        assert result.trusted
        assert result.path[-1] == pki["root"]

    def test_full_chain_presented(self, pki):
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([pki["leaf"], pki["inter"], pki["root"]])
        assert result.trusted

    def test_untrusted_root(self, pki):
        other_kp = generate_keypair(DeterministicRandom("other-root"))
        other = make_root_certificate(other_kp, Name.build(CN="Other Root"))
        verifier = ChainVerifier([other])
        result = verifier.validate([pki["leaf"], pki["inter"]])
        assert not result.trusted
        assert result.failure is ValidationFailure.NO_TRUSTED_ROOT

    def test_missing_intermediate(self, pki):
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([pki["leaf"]])
        assert not result.trusted
        assert result.failure is ValidationFailure.NO_TRUSTED_ROOT

    def test_empty_chain(self, pki):
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([])
        assert result.failure is ValidationFailure.EMPTY_CHAIN

    def test_hostname_mismatch(self, pki):
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([pki["leaf"], pki["inter"]], "evil.example.org")
        assert result.failure is ValidationFailure.HOSTNAME_MISMATCH

    def test_expired_leaf(self, pki):
        verifier = ChainVerifier([pki["root"]], at=datetime.datetime(2016, 1, 1))
        result = verifier.validate([pki["leaf"], pki["inter"]])
        assert result.failure is ValidationFailure.EXPIRED

    def test_not_yet_valid_leaf(self, pki):
        verifier = ChainVerifier([pki["root"]], at=datetime.datetime(2012, 1, 1))
        result = verifier.validate([pki["leaf"], pki["inter"]])
        assert result.failure is ValidationFailure.NOT_YET_VALID

    def test_validity_check_can_be_disabled(self, pki):
        verifier = ChainVerifier(
            [pki["root"]], at=datetime.datetime(2016, 1, 1), check_validity=False
        )
        assert verifier.validate([pki["leaf"], pki["inter"]]).trusted

    def test_leaf_signed_directly_by_root(self, pki):
        kp = generate_keypair(DeterministicRandom("direct-leaf"))
        direct = (
            CertificateBuilder()
            .subject(Name.build(CN="direct.example.com"))
            .issuer(pki["root"].subject)
            .public_key(kp.public)
            .serial_number(9)
            .sign(pki["root_kp"].private, issuer_public_key=pki["root_kp"].public)
        )
        verifier = ChainVerifier([pki["root"]])
        assert verifier.validate([direct]).trusted

    def test_forged_signature_rejected(self, pki):
        """An attacker-signed leaf claiming the intermediate as issuer."""
        mallory_kp = generate_keypair(DeterministicRandom("mallory"))
        forged = (
            CertificateBuilder()
            .subject(Name.build(CN="www.example.com", O="Example"))
            .issuer(pki["inter"].subject)
            .public_key(mallory_kp.public)
            .serial_number(666)
            .sign(mallory_kp.private)  # signed by mallory, not the intermediate
        )
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([forged, pki["inter"]])
        assert not result.trusted
        assert result.failure is ValidationFailure.BAD_SIGNATURE

    def test_leaf_cannot_issue(self, pki):
        """A chain through a non-CA certificate must fail."""
        kp = generate_keypair(DeterministicRandom("sub-leaf"))
        sub = (
            CertificateBuilder()
            .subject(Name.build(CN="sub.example.com"))
            .issuer(pki["leaf"].subject)
            .public_key(kp.public)
            .serial_number(10)
            .sign(pki["leaf_kp"].private, issuer_public_key=pki["leaf_kp"].public)
        )
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([sub, pki["leaf"], pki["inter"]])
        assert not result.trusted
        assert result.failure is ValidationFailure.NOT_A_CA

    def test_path_length_enforced(self, pki):
        """inter has pathLen=0, so a sub-CA below it must fail."""
        subca_kp = generate_keypair(DeterministicRandom("subca"))
        subca = (
            CertificateBuilder()
            .subject(Name.build(CN="Sub CA", O="T"))
            .issuer(pki["inter"].subject)
            .public_key(subca_kp.public)
            .serial_number(11)
            .ca(True)
            .sign(pki["inter_kp"].private, issuer_public_key=pki["inter_kp"].public)
        )
        kp = generate_keypair(DeterministicRandom("deep-leaf"))
        deep = (
            CertificateBuilder()
            .subject(Name.build(CN="deep.example.com"))
            .issuer(subca.subject)
            .public_key(kp.public)
            .serial_number(12)
            .sign(subca_kp.private, issuer_public_key=subca_kp.public)
        )
        verifier = ChainVerifier([pki["root"]])
        result = verifier.validate([deep, subca, pki["inter"]])
        assert not result.trusted
        assert result.failure is ValidationFailure.PATH_LENGTH_EXCEEDED

    def test_verify_raises(self, pki):
        verifier = ChainVerifier([pki["root"]])
        with pytest.raises(ChainValidationError) as excinfo:
            verifier.verify([pki["leaf"]])
        assert excinfo.value.reason is ValidationFailure.NO_TRUSTED_ROOT

    def test_verify_returns_path(self, pki):
        verifier = ChainVerifier([pki["root"]])
        path = verifier.verify([pki["leaf"], pki["inter"]])
        assert path[0] == pki["leaf"]

    def test_expired_anchor_warns_but_trusts(self, pki):
        """Android kept trusting the expired Firmaprofesional root (§2)."""
        kp = generate_keypair(DeterministicRandom("expired-anchor"))
        anchor = make_root_certificate(
            kp,
            Name.build(CN="Expired Anchor"),
            not_after=datetime.datetime(2013, 10, 1),
        )
        leaf_kp = generate_keypair(DeterministicRandom("expired-anchor-leaf"))
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="site.example.com"))
            .issuer(anchor.subject)
            .public_key(leaf_kp.public)
            .serial_number(2)
            .validity(datetime.datetime(2013, 1, 1), datetime.datetime(2015, 1, 1))
            .sign(kp.private, issuer_public_key=kp.public)
        )
        verifier = ChainVerifier([anchor], at=datetime.datetime(2014, 4, 1))
        result = verifier.validate([leaf])
        assert result.trusted
        assert any("expired" in warning for warning in result.warnings)

    def test_anchor_count(self, pki):
        assert ChainVerifier([pki["root"]]).anchor_count == 1


class TestIsSignedBy:
    def test_positive(self, pki):
        assert is_signed_by(pki["inter"], pki["root"])
        assert is_signed_by(pki["leaf"], pki["inter"])

    def test_negative_wrong_issuer(self, pki):
        assert not is_signed_by(pki["leaf"], pki["root"])

    def test_negative_name_match_wrong_key(self, pki):
        impostor_kp = generate_keypair(DeterministicRandom("impostor"))
        impostor = make_root_certificate(impostor_kp, Name.build(CN="Chain Root", O="T", C="US"))
        assert not is_signed_by(pki["inter"], impostor)
