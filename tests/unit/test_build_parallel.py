"""Byte-identity of the parallel build path.

The plan/materialize split and the warmed key pools must be pure
accelerations: the universe a parallel build produces is bit-for-bit
the universe the serial build produces, at any worker count, because
every key draws from its own named ``derive_random`` stream and leaf
materialization is a pure function of its plan.
"""

import pytest

from repro.notary import build_notary
from repro.parallel import ParallelExecutor
from repro.rootstore import CertificateFactory
from repro.rootstore.catalog import default_catalog
from repro.tlssim.traffic import TlsTrafficGenerator

SEED = "parallel-identity"
SCALE = 0.03


def leaf_bytes(notary):
    return [leaf.certificate.encoded for leaf in notary.leaves]


class TestWarmKeysMatchLazyKeys:
    def test_factory_warm_equals_lazy(self):
        lazy = CertificateFactory(seed=SEED)
        warmed = CertificateFactory(seed=SEED)
        names = [p.name for p in default_catalog().all_profiles()][:8]
        warmed.warm(names, ParallelExecutor(workers=2))
        for name in names:
            assert warmed.keypair_for(name) == lazy.keypair_for(name)

    def test_warm_is_idempotent(self):
        factory = CertificateFactory(seed=SEED)
        names = [p.name for p in default_catalog().all_profiles()][:4]
        executor = ParallelExecutor(workers=2)
        first = factory.warm(names, executor)
        second = factory.warm(names, executor)
        assert first == len(names) and second == 0


class TestParallelBuildIdentity:
    @pytest.fixture(scope="class")
    def serial(self):
        factory = CertificateFactory(seed=SEED)
        return build_notary(factory, default_catalog(), scale=SCALE)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_build_notary_matches_serial(self, serial, workers):
        generator = TlsTrafficGenerator(
            CertificateFactory(seed=SEED), default_catalog(), scale=SCALE
        )
        parallel = build_notary(
            generator=generator, executor=ParallelExecutor(workers=workers)
        )
        assert leaf_bytes(parallel) == leaf_bytes(serial)
        assert parallel.total_certificates == serial.total_certificates

    def test_generator_kwarg_overrides_positional_defaults(self, serial):
        # passing a generator must use *its* factory/catalog/scale.
        generator = TlsTrafficGenerator(
            CertificateFactory(seed=SEED), default_catalog(), scale=SCALE
        )
        rebuilt = build_notary(generator=generator)
        assert leaf_bytes(rebuilt) == leaf_bytes(serial)

    def test_population_matches_serial(self):
        from repro.android.population import PopulationConfig, PopulationGenerator

        config = PopulationConfig(seed=SEED, scale=0.1)
        serial = PopulationGenerator(config).generate()
        parallel = PopulationGenerator(config).generate(
            executor=ParallelExecutor(workers=2)
        )
        assert [d.device_id for d in serial.devices] == [
            d.device_id for d in parallel.devices
        ]
        assert [
            sorted(cert.encoded for cert in d.store.certificates())
            for d in serial.devices
        ] == [
            sorted(cert.encoded for cert in d.store.certificates())
            for d in parallel.devices
        ]


class TestPlanMaterializeSplit:
    def test_materialize_is_pure_given_plan(self):
        factory = CertificateFactory(seed=SEED)
        generator = TlsTrafficGenerator(factory, default_catalog(), scale=SCALE)
        profile = next(iter(default_catalog().all_profiles()))
        plans = list(generator.plans_for_profile(profile))
        assert plans, "profile produced no plans"
        once = [generator.materialize(plan).certificate.encoded for plan in plans]
        again = [generator.materialize(plan).certificate.encoded for plan in plans]
        assert once == again

    def test_planning_consumes_no_leaf_rng(self):
        # enumerating plans twice yields identical serials/hosts: the
        # plan stage must not advance any per-leaf RNG stream.
        factory = CertificateFactory(seed=SEED)
        generator = TlsTrafficGenerator(factory, default_catalog(), scale=SCALE)
        profile = next(iter(default_catalog().all_profiles()))
        first = [
            (plan.host, plan.serial)
            for plan in generator.plans_for_profile(profile)
        ]
        second = [
            (plan.host, plan.serial)
            for plan in generator.plans_for_profile(profile)
        ]
        assert first == second
