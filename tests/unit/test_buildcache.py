"""Unit tests for the persistent build-artifact cache."""

import pickle

import pytest

import repro.buildcache as buildcache_module
from repro.buildcache import MAGIC, BuildCache, generator_fingerprint
from repro.faults.quarantine import ErrorCategory

PARAMS = {"seed": "cache-test", "scale": 0.5}


@pytest.fixture
def cache(tmp_path):
    return BuildCache(tmp_path / "cache")


class TestRoundTrip:
    def test_put_then_get(self, cache):
        value = {"leaves": [b"cert-1", b"cert-2"], "count": 2}
        cache.put("universe", PARAMS, value)
        assert cache.get("universe", PARAMS) == value
        assert (cache.hits, cache.misses) == (1, 0)

    def test_absent_entry_is_a_miss(self, cache):
        assert cache.get("universe", PARAMS) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_put_is_atomic_no_temp_litter(self, cache):
        cache.put("universe", PARAMS, [1, 2, 3])
        leftovers = [p.name for p in cache.root.iterdir() if p.name.startswith(".")]
        assert leftovers == []


class TestKeying:
    """Every build input must land in a distinct cache slot."""

    def test_seed_discriminates(self, cache):
        assert cache.path_for("universe", PARAMS) != cache.path_for(
            "universe", {**PARAMS, "seed": "other"}
        )

    def test_scale_discriminates(self, cache):
        assert cache.path_for("universe", PARAMS) != cache.path_for(
            "universe", {**PARAMS, "scale": 1.0}
        )

    def test_kind_discriminates(self, cache):
        assert cache.path_for("universe", PARAMS) != cache.path_for(
            "bench-notary", PARAMS
        )

    def test_cache_schema_discriminates(self, cache, monkeypatch):
        before = cache.cache_key("universe", PARAMS)
        monkeypatch.setattr(buildcache_module, "CACHE_SCHEMA", 2)
        assert cache.cache_key("universe", PARAMS) != before

    def test_generator_fingerprint_discriminates(self, cache, monkeypatch):
        before = cache.cache_key("universe", PARAMS)
        monkeypatch.setattr(
            buildcache_module, "generator_fingerprint", lambda: "0" * 64
        )
        assert cache.cache_key("universe", PARAMS) != before

    def test_fingerprint_is_a_stable_digest(self):
        assert generator_fingerprint() == generator_fingerprint()
        assert len(generator_fingerprint()) == 64


class TestCorruption:
    """Bad entries are quarantined, deleted, and reported as misses."""

    def assert_quarantined(self, cache, path, survivors=1):
        assert cache.get("universe", PARAMS) is None
        assert not path.exists(), "corrupt entry must be deleted"
        records = list(cache.quarantine)
        assert len(records) == survivors
        assert records[-1].category is ErrorCategory.CACHE_CORRUPTION
        assert records[-1].where == f"buildcache:{path.name}"

    def test_truncated_entry(self, cache):
        path = cache.put("universe", PARAMS, list(range(100)))
        path.write_bytes(path.read_bytes()[: len(MAGIC) + 10])
        self.assert_quarantined(cache, path)
        # the rebuild-and-republish cycle works on the same slot
        cache.put("universe", PARAMS, list(range(100)))
        assert cache.get("universe", PARAMS) == list(range(100))

    def test_bad_magic(self, cache):
        path = cache.put("universe", PARAMS, "artifact")
        path.write_bytes(b"XXXX" + path.read_bytes()[4:])
        self.assert_quarantined(cache, path)

    def test_bitflip_in_payload(self, cache):
        path = cache.put("universe", PARAMS, "artifact")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        self.assert_quarantined(cache, path)

    def test_valid_envelope_undecodable_payload(self, cache):
        import hashlib

        path = cache.put("universe", PARAMS, "artifact")
        body = b"not a pickle at all"
        path.write_bytes(MAGIC + hashlib.sha256(body).digest() + body)
        self.assert_quarantined(cache, path)

    def test_corruption_never_raises(self, cache):
        path = cache.put("universe", PARAMS, "artifact")
        path.write_bytes(b"")
        assert cache.get("universe", PARAMS) is None  # no exception

    def test_crash_torn_inside_magic(self, cache):
        # A crash after 4 bytes of an 8-byte MAGIC: the envelope is cut
        # mid-preamble. Must read as a quarantined miss, then rebuild.
        path = cache.put("universe", PARAMS, list(range(50)))
        path.write_bytes(path.read_bytes()[:4])
        self.assert_quarantined(cache, path)
        cache.put("universe", PARAMS, list(range(50)))
        assert cache.get("universe", PARAMS) == list(range(50))

    def test_crash_torn_inside_sha256_trailer(self, cache):
        # A crash partway through the 32-byte digest: full MAGIC present
        # but the integrity header itself is incomplete.
        path = cache.put("universe", PARAMS, list(range(50)))
        path.write_bytes(path.read_bytes()[: len(MAGIC) + 17])
        self.assert_quarantined(cache, path)
        cache.put("universe", PARAMS, list(range(50)))
        assert cache.get("universe", PARAMS) == list(range(50))

    def test_crash_zero_length_file(self, cache):
        # A crash between open and first write leaves an empty file
        # under the published name (can't happen via atomic_write, but
        # backups/copies can produce it).
        path = cache.put("universe", PARAMS, list(range(50)))
        path.write_bytes(b"")
        self.assert_quarantined(cache, path)
        cache.put("universe", PARAMS, list(range(50)))
        assert cache.get("universe", PARAMS) == list(range(50))

    def test_payload_digest_guards_the_pickle(self, cache):
        # swapping the body for a *different valid pickle* without
        # re-digesting must still be caught.
        path = cache.put("universe", PARAMS, "honest artifact")
        blob = path.read_bytes()
        forged = pickle.dumps("forged artifact")
        path.write_bytes(blob[: len(MAGIC) + 32] + forged)
        self.assert_quarantined(cache, path)
