"""Unit tests for the serve subsystem's transport-free core.

Everything here runs against a hand-built snapshot — no study, no
sockets — which is exactly what the app/cache/snapshot split is for.
"""

import json
import threading

import pytest

from repro import __version__
from repro.analysis.report import to_json_bytes
from repro.obs.schema import validate_metrics
from repro.serve import Request, ResponseCache, ServeApp, SnapshotHolder, StudySnapshot

FINGERPRINT = "ab" * 32


CAMPAIGN_ID = "cd" * 32


def make_snapshot(
    generation: int = 0, marker: str = "v0", scenarios: dict | None = None
) -> StudySnapshot:
    export = {
        "schema": 1,
        "tables": {str(n): [["row", n, marker]] for n in range(1, 7)},
        "figures": {str(n): {"figure": n, "marker": marker} for n in range(1, 4)},
    }
    if scenarios is not None:
        export["scenarios"] = scenarios
    roots = {
        FINGERPRINT: {
            "fingerprint": FINGERPRINT,
            "subject": "CN=Unit Root",
            "label": "Unit Root",
            "stores": ["aosp-4.4", "mozilla"],
            "validated_current": 7,
            "validated_total": 9,
            "seen_in_traffic": True,
        }
    }
    sessions = {"41": {"session_id": 41, "aosp_count": 3, "additional": []}}
    interceptions = {
        CAMPAIGN_ID: {
            "campaign_id": CAMPAIGN_ID,
            "organization": "Evil Org",
            "kind": "on-path-proxy",
            "session_count": 2,
            "session_ids": [3, 9],
            "root_fingerprints": [FINGERPRINT],
            "intercepted_domains": ["www.hsbc.com:443"],
            "relayed_domains": [],
            "pinning_saved": 1,
            "whitelist_defeated": 0,
        }
    }
    return StudySnapshot(
        export,
        roots=roots,
        sessions=sessions,
        meta={"generation": generation, "marker": marker},
        generation=generation,
        interceptions=interceptions,
    )


@pytest.fixture
def app():
    return ServeApp(SnapshotHolder(make_snapshot()), capacity=3)


class TestRouting:
    def test_tables_and_figures_resolve(self, app):
        for n in range(1, 7):
            response = app.handle(Request("GET", f"/v1/tables/{n}"))
            assert response.status == 200
            assert json.loads(response.body) == [["row", n, "v0"]]
        for n in range(1, 4):
            assert app.handle(Request("GET", f"/v1/figures/{n}")).status == 200

    def test_out_of_range_numbers_are_404(self, app):
        assert app.handle(Request("GET", "/v1/tables/0")).status == 404
        assert app.handle(Request("GET", "/v1/tables/7")).status == 404
        assert app.handle(Request("GET", "/v1/figures/4")).status == 404

    def test_unknown_route_is_404_with_json_error(self, app):
        response = app.handle(Request("GET", "/v2/nope"))
        assert response.status == 404
        assert "error" in json.loads(response.body)

    def test_wrong_method_is_405(self, app):
        assert app.handle(Request("POST", "/v1/tables/1")).status == 405
        assert app.handle(Request("GET", "/admin/reload")).status == 405

    def test_head_routes_like_get(self, app):
        head = app.handle(Request("HEAD", "/v1/tables/1"))
        get = app.handle(Request("GET", "/v1/tables/1"))
        assert head.status == 200
        # same body/ETag as GET; the transport drops the body for HEAD.
        assert head.body == get.body
        assert dict(head.headers)["ETag"] == dict(get.headers)["ETag"]

    def test_roots_listing_and_detail(self, app):
        listing = json.loads(app.handle(Request("GET", "/v1/roots")).body)
        assert listing["count"] == 1
        assert listing["roots"][0]["fingerprint"] == FINGERPRINT
        detail = json.loads(
            app.handle(Request("GET", f"/v1/roots/{FINGERPRINT}")).body
        )
        assert detail["validated_current"] == 7
        assert detail["stores"] == ["aosp-4.4", "mozilla"]
        missing = app.handle(Request("GET", f"/v1/roots/{'00' * 32}"))
        assert missing.status == 404

    def test_session_diff_lookup(self, app):
        hit = app.handle(Request("GET", "/v1/sessions/41/diff"))
        assert json.loads(hit.body)["aosp_count"] == 3
        assert app.handle(Request("GET", "/v1/sessions/999/diff")).status == 404

    def test_health_reports_version_and_meta(self, app):
        payload = json.loads(app.handle(Request("GET", "/v1/health")).body)
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["snapshot"]["marker"] == "v0"


class TestEtagAndCache:
    def test_bodies_are_byte_identical_and_canonical(self, app):
        first = app.handle(Request("GET", "/v1/tables/2"))
        second = app.handle(Request("GET", "/v1/tables/2"))
        assert first.body == second.body
        assert first.body == to_json_bytes([["row", 2, "v0"]])

    def test_etag_revalidation_returns_304(self, app):
        first = app.handle(Request("GET", "/v1/figures/1"))
        etag = dict(first.headers)["ETag"]
        revalidated = app.handle(
            Request("GET", "/v1/figures/1", {"if-none-match": etag})
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert dict(revalidated.headers)["ETag"] == etag

    def test_stale_etag_gets_full_body(self, app):
        response = app.handle(
            Request("GET", "/v1/figures/1", {"if-none-match": '"stale"'})
        )
        assert response.status == 200
        assert response.body

    def test_repeat_requests_hit_the_lru(self, app):
        app.handle(Request("GET", "/v1/tables/1"))
        app.handle(Request("GET", "/v1/tables/1"))
        app.handle(Request("GET", "/v1/tables/1"))
        metrics = json.loads(app.handle(Request("GET", "/v1/metrics")).body)
        assert metrics["counters"]["serve.cache.hits"] == 2
        assert metrics["counters"]["serve.cache.misses"] == 1

    def test_metrics_export_matches_obs_schema(self, app):
        app.handle(Request("GET", "/v1/tables/1"))
        validate_metrics(json.loads(app.handle(Request("GET", "/v1/metrics")).body))

    def test_request_latency_histogram_records(self, app):
        app.handle(Request("GET", "/v1/tables/1"))
        metrics = json.loads(app.handle(Request("GET", "/v1/metrics")).body)
        assert metrics["histograms"]["serve.request_seconds"]["count"] >= 1

    def test_request_spans_are_recorded(self, app):
        app.handle(Request("GET", "/v1/tables/4"))
        span = app.recent_spans[-1]
        assert span["name"] == "serve.request"
        assert span["attributes"]["path"] == "/v1/tables/4"
        assert span["attributes"]["status"] == 200


class TestBackpressure:
    def test_saturated_app_sheds_with_retry_after(self, app):
        for _ in range(app.capacity):
            assert app._slots.acquire(blocking=False)
        try:
            response = app.handle(Request("GET", "/v1/health"))
        finally:
            for _ in range(app.capacity):
                app._slots.release()
        assert response.status == 503
        assert dict(response.headers)["Retry-After"] == "1"
        assert "error" in json.loads(response.body)

    def test_shedding_is_counted_and_recovers(self, app):
        for _ in range(app.capacity):
            app._slots.acquire(blocking=False)
        app.handle(Request("GET", "/v1/health"))
        for _ in range(app.capacity):
            app._slots.release()
        assert app.handle(Request("GET", "/v1/health")).status == 200
        metrics = json.loads(app.handle(Request("GET", "/v1/metrics")).body)
        assert metrics["counters"]["serve.shed"] == 1


class TestReload:
    def test_reload_without_reloader_is_501(self, app):
        assert app.handle(Request("POST", "/admin/reload")).status == 501

    def test_reload_swaps_snapshot_atomically(self):
        generations = iter(range(1, 10))

        def reloader():
            generation = next(generations)
            return make_snapshot(generation, marker=f"v{generation}")

        app = ServeApp(SnapshotHolder(make_snapshot()), reloader=reloader)
        before = app.handle(Request("GET", "/v1/tables/1")).body
        reload_response = app.handle(Request("POST", "/admin/reload"))
        assert reload_response.status == 200
        assert json.loads(reload_response.body)["generation"] == 1
        after = app.handle(Request("GET", "/v1/tables/1"))
        assert json.loads(after.body) == [["row", 1, "v1"]]
        assert after.body != before
        # new generation → new ETag namespace, old cache lines unused
        assert dict(after.headers)["ETag"].startswith('"g1-')

    def test_failed_reload_returns_typed_500_and_keeps_snapshot(self):
        def exploding_reloader():
            raise RuntimeError("rebuild blew up")

        app = ServeApp(
            SnapshotHolder(make_snapshot(3, marker="v3")),
            reloader=exploding_reloader,
        )
        before = app.handle(Request("GET", "/v1/tables/1"))
        response = app.handle(Request("POST", "/admin/reload"))
        assert response.status == 500
        error = json.loads(response.body)["error"]
        assert error["kind"] == "reload_failed"
        assert "RuntimeError" in error["message"]
        # the old snapshot and generation survive untouched
        assert error["generation"] == 3
        after = app.handle(Request("GET", "/v1/tables/1"))
        assert after.body == before.body
        assert dict(after.headers)["ETag"] == dict(before.headers)["ETag"]
        metrics = json.loads(app.handle(Request("GET", "/v1/metrics")).body)
        assert metrics["counters"]["serve.reload_failures"] == 1
        assert "serve.reloads" not in metrics["counters"]

    def test_reload_recovers_after_a_failure(self):
        calls = {"n": 0}

        def flaky_reloader():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")
            return make_snapshot(1, marker="v1")

        app = ServeApp(SnapshotHolder(make_snapshot()), reloader=flaky_reloader)
        assert app.handle(Request("POST", "/admin/reload")).status == 500
        ok = app.handle(Request("POST", "/admin/reload"))
        assert ok.status == 200
        assert json.loads(ok.body)["generation"] == 1
        body = app.handle(Request("GET", "/v1/tables/1")).body
        assert json.loads(body) == [["row", 1, "v1"]]

    def test_concurrent_readers_never_see_a_torn_snapshot(self):
        holder = SnapshotHolder(make_snapshot(0, marker="g0"))
        app = ServeApp(holder, capacity=16)
        failures = []

        def reader():
            for _ in range(200):
                payload = json.loads(
                    app.handle(Request("GET", "/v1/health")).body
                )
                meta = payload["snapshot"]
                if meta["marker"] != f"g{meta['generation']}":
                    failures.append(meta)

        def swapper():
            for generation in range(1, 50):
                holder.swap(make_snapshot(generation, marker=f"g{generation}"))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestResponseCache:
    def test_lru_eviction_order(self):
        cache = ResponseCache(capacity=2)
        cache.put("a", (b"a", "ea", "t"))
        cache.put("b", (b"b", "eb", "t"))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", (b"c", "ec", "t"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1

    def test_counters_and_clear(self):
        cache = ResponseCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("k", (b"v", "e", "t"))
        assert cache.get("k") == (b"v", "e", "t")
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_clear_reconciles_stats(self):
        cache = ResponseCache(capacity=2)
        cache.put("a", (b"a", "ea", "t"))
        cache.put("b", (b"b", "eb", "t"))
        cache.put("c", (b"c", "ec", "t"))  # evicts a
        cache.get("b")
        cache.get("nope")
        cache.clear()
        # A cleared cache starts a fresh era: zero entries alongside the
        # old era's hit/miss/eviction counts was the reconciliation bug.
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0,
        }

    def test_stats_snapshot_stays_consistent_under_hammer(self):
        """Threaded hammer: stats() must never expose a torn snapshot.

        Workers replay the app's get-then-put-on-miss pattern over a key
        space larger than capacity (forcing evictions) while a checker
        reads stats() continuously. In any atomic snapshot every
        resident or evicted entry was preceded by a counted miss, so
        ``entries + evictions <= misses`` must hold — interleaved
        unlocked attribute reads violate it readily.
        """
        capacity = 8
        cache = ResponseCache(capacity=capacity)
        lookups_per_worker = 3000
        workers = 4
        stop = threading.Event()
        violations = []

        def worker(offset: int) -> None:
            for i in range(lookups_per_worker):
                key = (offset + i) % (capacity * 4)
                if cache.get(key) is None:
                    cache.put(key, (b"body", f"etag-{key}", "t"))

        def checker() -> None:
            while not stop.is_set():
                stats = cache.stats()
                if stats["entries"] > capacity:
                    violations.append(("overfull", stats))
                if stats["entries"] + stats["evictions"] > stats["misses"]:
                    violations.append(("unaccounted-entries", stats))

        threads = [
            threading.Thread(target=worker, args=(offset,))
            for offset in range(workers)
        ]
        observer = threading.Thread(target=checker)
        observer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        observer.join()
        assert not violations
        final = cache.stats()
        assert final["hits"] + final["misses"] == workers * lookups_per_worker

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(capacity=0)


class TestSnapshotSwapRace:
    def test_inflight_request_never_served_next_generations_entry(self):
        """A request that read generation N must get N's body and ETag.

        Readers hammer a cached endpoint while a swapper advances the
        snapshot generation; every response's ETag generation must match
        the generation baked into its body, and the ETag digest must be
        the digest of those exact bytes — i.e. no response ever pairs
        generation N's body with a cache entry or ETag from N+1.
        """
        import hashlib

        holder = SnapshotHolder(make_snapshot(0, marker="g0"))
        app = ServeApp(holder, capacity=16)
        failures = []

        def reader():
            for _ in range(300):
                response = app.handle(Request("GET", "/v1/tables/1"))
                etag = dict(response.headers)["ETag"]
                marker = json.loads(response.body)[0][2]  # "g<generation>"
                etag_generation = etag[2 : etag.index("-")]
                if f"g{etag_generation}" != marker:
                    failures.append((etag, marker))
                digest = hashlib.sha256(response.body).hexdigest()[:32]
                if not etag.endswith(f'-{digest}"'):
                    failures.append(("etag-body-mismatch", etag, marker))

        def swapper():
            for generation in range(1, 80):
                holder.swap(make_snapshot(generation, marker=f"g{generation}"))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestInFlightAccounting:
    """The public drain API both transports' drain loops poll."""

    def test_starts_idle(self, app):
        assert app.in_flight() == 0
        assert app.idle() is True

    def test_in_flight_visible_during_a_request(self):
        gate = threading.Event()
        observed = []

        def slow_reloader():
            gate.wait(timeout=10)
            return make_snapshot(1, marker="v1")

        app = ServeApp(SnapshotHolder(make_snapshot()), reloader=slow_reloader)
        worker = threading.Thread(
            target=lambda: observed.append(
                app.handle(Request("POST", "/admin/reload"))
            )
        )
        worker.start()
        deadline = threading.Event()
        waited = 0.0
        while app.in_flight() == 0 and waited < 5.0:
            deadline.wait(0.01)
            waited += 0.01
        assert app.in_flight() == 1
        assert app.idle() is False
        gate.set()
        worker.join(timeout=10)
        assert observed and observed[0].status == 200
        assert app.in_flight() == 0
        assert app.idle() is True

    def test_counter_recovers_after_shed(self, app):
        for _ in range(app.capacity):
            app._slots.acquire(blocking=False)
        assert app.handle(Request("GET", "/v1/health")).status == 503
        for _ in range(app.capacity):
            app._slots.release()
        assert app.in_flight() == 0 and app.idle()

    def test_fast_lane_counts_too_on_cache_miss(self, app):
        # handle_fast falls through to handle() on a cold cache; either
        # way the request must not leak in-flight accounting.
        assert app.handle_fast(Request("GET", "/v1/tables/1")).status == 200
        assert app.handle_fast(Request("GET", "/v1/tables/1")).status == 200
        assert app.in_flight() == 0


class TestQueryString:
    """Satellite: the raw query rides on Request without forking ETags."""

    def test_query_defaults_empty(self):
        assert Request("GET", "/v1/health").query == ""

    def test_existing_routes_ignore_query_etag_stably(self, app):
        plain = app.handle(Request("GET", "/v1/tables/1"))
        with_query = app.handle(
            Request("GET", "/v1/tables/1", query="limit=5&pretty=1")
        )
        assert plain.status == with_query.status == 200
        assert plain.body == with_query.body
        assert dict(plain.headers)["ETag"] == dict(with_query.headers)["ETag"]

    def test_fast_lane_cache_key_ignores_query(self, app):
        primed = app.handle_fast(Request("GET", "/v1/roots"))
        etag = dict(primed.headers)["ETag"]
        hit = app.handle_fast(
            Request(
                "GET",
                "/v1/roots",
                headers={"if-none-match": etag},
                query="page=2",
            )
        )
        assert hit.status == 304

    def test_query_never_leaks_into_routing(self, app):
        # "?…" split upstream by every transport; a path that still
        # carries one must 404, not silently match a route.
        assert app.handle(Request("GET", "/v1/health?x=1")).status == 404


class TestInterceptionEndpoints:
    def test_listing_is_summary_form(self, app):
        listing = json.loads(app.handle(Request("GET", "/v1/interceptions")).body)
        assert listing["count"] == 1
        (campaign,) = listing["campaigns"]
        assert campaign == {
            "campaign_id": CAMPAIGN_ID,
            "organization": "Evil Org",
            "kind": "on-path-proxy",
            "session_count": 2,
        }

    def test_campaign_detail(self, app):
        detail = json.loads(
            app.handle(Request("GET", f"/v1/interceptions/{CAMPAIGN_ID}")).body
        )
        assert detail["session_ids"] == [3, 9]
        assert detail["pinning_saved"] == 1

    def test_unknown_campaign_is_404(self, app):
        assert (
            app.handle(Request("GET", f"/v1/interceptions/{'0' * 64}")).status
            == 404
        )
        # non-hex / wrong-length ids never match the route at all
        assert app.handle(Request("GET", "/v1/interceptions/zzz")).status == 404

    def test_scenarios_disabled_on_stock_snapshot(self, app):
        payload = json.loads(app.handle(Request("GET", "/v1/scenarios")).body)
        assert payload == {"enabled": False}

    def test_scenarios_enabled_payload(self):
        section = {"fleet": {"seed": "s", "campaigns": []}, "score": None}
        app = ServeApp(
            SnapshotHolder(make_snapshot(scenarios=section)), capacity=3
        )
        payload = json.loads(app.handle(Request("GET", "/v1/scenarios")).body)
        assert payload["enabled"] is True
        assert payload["fleet"] == {"seed": "s", "campaigns": []}

    def test_etag_revalidation(self, app):
        first = app.handle(Request("GET", "/v1/interceptions"))
        etag = dict(first.headers)["ETag"]
        revalidated = app.handle(
            Request("GET", "/v1/interceptions", {"if-none-match": etag})
        )
        assert revalidated.status == 304
        assert revalidated.body == b""

    def test_fast_lane_serves_interceptions(self, app):
        slow = app.handle(Request("GET", "/v1/interceptions"))
        fast = app.handle_fast(Request("GET", "/v1/interceptions"))
        assert fast.status == 200
        assert fast.body == slow.body
        assert dict(fast.headers)["ETag"] == dict(slow.headers)["ETag"]
