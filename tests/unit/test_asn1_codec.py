"""Unit tests for the DER encoder/decoder pair."""

import datetime

import pytest

from repro.asn1 import (
    Asn1Error,
    ObjectIdentifier,
    decode,
    decode_all,
    encode_bit_string,
    encode_boolean,
    encode_explicit,
    encode_ia5_string,
    encode_implicit,
    encode_integer,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_utc_time,
    encode_utf8_string,
    encode_generalized_time,
)
from repro.asn1.encoder import encode_length, encode_x509_time, is_printable


class TestEncodeLength:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form(self):
        assert encode_length(128) == b"\x81\x80"
        assert encode_length(256) == b"\x82\x01\x00"
        assert encode_length(65535) == b"\x82\xff\xff"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_length(-1)


class TestInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (1, b"\x02\x01\x01"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (256, b"\x02\x02\x01\x00"),
            (-1, b"\x02\x01\xff"),
            (-128, b"\x02\x01\x80"),
            (-129, b"\x02\x02\xff\x7f"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_integer(value) == expected

    @pytest.mark.parametrize("value", [0, 1, -1, 127, 128, -128, 255, 65537, 2**512, -(2**100)])
    def test_roundtrip(self, value):
        assert decode(encode_integer(value)).as_integer() == value

    def test_nonminimal_rejected(self):
        with pytest.raises(Asn1Error, match="non-minimal"):
            decode(b"\x02\x02\x00\x01").as_integer()

    def test_empty_content_rejected(self):
        with pytest.raises(Asn1Error, match="empty INTEGER"):
            decode(b"\x02\x00").as_integer()


class TestBoolean:
    def test_true_false(self):
        assert decode(encode_boolean(True)).as_boolean() is True
        assert decode(encode_boolean(False)).as_boolean() is False

    def test_der_requires_ff(self):
        with pytest.raises(Asn1Error, match="non-DER BOOLEAN"):
            decode(b"\x01\x01\x01").as_boolean()


class TestBitString:
    def test_roundtrip(self):
        data, unused = decode(encode_bit_string(b"\xab\xcd", 3)).as_bit_string()
        assert data == b"\xab\xcd"
        assert unused == 3

    def test_empty(self):
        assert decode(encode_bit_string(b"")).as_bit_string() == (b"", 0)

    def test_bad_unused_count(self):
        with pytest.raises(ValueError):
            encode_bit_string(b"\x00", 8)
        with pytest.raises(ValueError):
            encode_bit_string(b"", 1)

    def test_decoder_rejects_bad_unused(self):
        with pytest.raises(Asn1Error):
            decode(b"\x03\x02\x08\x00").as_bit_string()


class TestStrings:
    def test_printable_roundtrip(self):
        encoded = encode_printable_string("Test CA 2014")
        assert decode(encoded).as_string() == "Test CA 2014"

    def test_printable_rejects_non_printable(self):
        with pytest.raises(ValueError, match="not a PrintableString"):
            encode_printable_string("comma@nope!")

    def test_is_printable(self):
        assert is_printable("A-Z a-z 0-9 '()+,-./:=?")
        assert not is_printable("x@y")
        assert not is_printable("ümlaut")

    def test_utf8_roundtrip(self):
        encoded = encode_utf8_string("Türktrust Elektronik")
        assert decode(encoded).as_string() == "Türktrust Elektronik"

    def test_ia5_roundtrip(self):
        encoded = encode_ia5_string("admin@example.com")
        assert decode(encoded).as_string() == "admin@example.com"

    def test_string_accessor_rejects_integer(self):
        with pytest.raises(Asn1Error, match="string type"):
            decode(encode_integer(1)).as_string()


class TestTime:
    def test_utc_roundtrip(self):
        moment = datetime.datetime(2014, 12, 2, 10, 30, 15)
        assert decode(encode_utc_time(moment)).as_time() == moment

    def test_utc_century_pivot(self):
        # 49 -> 2049, 50 -> 1950 per RFC 5280.
        assert decode(b"\x17\x0d" + b"490101000000Z").as_time().year == 2049
        assert decode(b"\x17\x0d" + b"500101000000Z").as_time().year == 1950

    def test_utc_rejects_out_of_range_year(self):
        with pytest.raises(ValueError):
            encode_utc_time(datetime.datetime(2050, 1, 1))

    def test_generalized_roundtrip(self):
        moment = datetime.datetime(2055, 6, 1, 0, 0, 1)
        assert decode(encode_generalized_time(moment)).as_time() == moment

    def test_x509_time_selects_form(self):
        assert encode_x509_time(datetime.datetime(2049, 1, 1))[0] == 0x17
        assert encode_x509_time(datetime.datetime(2050, 1, 1))[0] == 0x18

    def test_malformed_utc_rejected(self):
        with pytest.raises(Asn1Error, match="malformed UTCTime"):
            decode(b"\x17\x0b" + b"49010100000").as_time()

    def test_timezone_aware_normalized(self):
        tz = datetime.timezone(datetime.timedelta(hours=2))
        aware = datetime.datetime(2014, 6, 1, 14, 0, 0, tzinfo=tz)
        assert decode(encode_utc_time(aware)).as_time() == datetime.datetime(
            2014, 6, 1, 12, 0, 0
        )


class TestOid:
    def test_known_encoding(self):
        # 1.2.840.113549.1.1.11 (sha256WithRSAEncryption)
        encoded = encode_oid("1.2.840.113549.1.1.11")
        assert encoded == bytes.fromhex("06092a864886f70d01010b")

    @pytest.mark.parametrize(
        "dotted", ["2.5.4.3", "1.2.840.113549.1.1.1", "0.9.2342.19200300.100.1.25", "2.999.1"]
    )
    def test_roundtrip(self, dotted):
        assert decode(encode_oid(dotted)).as_oid().dotted == dotted

    def test_rejects_single_arc(self):
        with pytest.raises(ValueError):
            ObjectIdentifier("2")

    def test_rejects_bad_leading_arcs(self):
        with pytest.raises(ValueError):
            ObjectIdentifier("3.1")
        with pytest.raises(ValueError):
            ObjectIdentifier("0.40")

    def test_truncated_arc_rejected(self):
        with pytest.raises(Asn1Error):
            decode(b"\x06\x02\x88\x80").as_oid()

    def test_nonminimal_arc_rejected(self):
        with pytest.raises(Asn1Error):
            decode(b"\x06\x03\x55\x80\x03").as_oid()

    def test_equality_and_hash(self):
        a = ObjectIdentifier("2.5.4.3")
        b = ObjectIdentifier((2, 5, 4, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != ObjectIdentifier("2.5.4.6")

    def test_ordering(self):
        assert ObjectIdentifier("2.5.4.3") < ObjectIdentifier("2.5.4.6")


class TestStructures:
    def test_sequence_children(self):
        encoded = encode_sequence([encode_integer(1), encode_null(), encode_boolean(True)])
        seq = decode(encoded)
        assert len(seq) == 3
        assert seq[0].as_integer() == 1
        seq[1].as_null()
        assert seq[2].as_boolean() is True

    def test_primitive_has_no_children(self):
        with pytest.raises(Asn1Error, match="primitive"):
            decode(encode_integer(1)).children

    def test_set_sorts_components(self):
        unsorted = [encode_integer(300), encode_integer(2)]
        encoded = encode_set(unsorted)
        values = [child.as_integer() for child in decode(encoded)]
        assert values == [2, 300]

    def test_explicit_wrap_unwrap(self):
        encoded = encode_explicit(0, encode_integer(2))
        obj = decode(encoded)
        assert obj.tag.is_context(0)
        assert obj.explicit_inner().as_integer() == 2

    def test_explicit_inner_rejects_multiple(self):
        encoded = encode_explicit(0, encode_integer(1) + encode_integer(2))
        with pytest.raises(Asn1Error, match="exactly one"):
            decode(encoded).explicit_inner()

    def test_implicit_retag(self):
        encoded = encode_implicit(2, encode_ia5_string("dns.example"))
        obj = decode(encoded)
        assert obj.tag.is_context(2)
        assert not obj.tag.constructed
        assert obj.content == b"dns.example"

    def test_implicit_preserves_constructed(self):
        encoded = encode_implicit(1, encode_sequence([encode_integer(1)]))
        assert decode(encoded).tag.constructed

    def test_octet_string_roundtrip(self):
        assert decode(encode_octet_string(b"\x00\xff")).as_octet_string() == b"\x00\xff"


class TestDecoderStrictness:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(Asn1Error, match="trailing"):
            decode(encode_integer(1) + b"\x00")

    def test_decode_all(self):
        blob = encode_integer(1) + encode_integer(2)
        assert [o.as_integer() for o in decode_all(blob)] == [1, 2]

    def test_truncated_content_rejected(self):
        with pytest.raises(Asn1Error, match="truncated"):
            decode(b"\x02\x05\x01")

    def test_missing_length_rejected(self):
        with pytest.raises(Asn1Error, match="missing length"):
            decode(b"\x02")

    def test_indefinite_length_rejected(self):
        with pytest.raises(Asn1Error, match="indefinite"):
            decode(b"\x30\x80\x00\x00")

    def test_nonminimal_long_length_rejected(self):
        # Value 1 encoded with long-form length.
        with pytest.raises(Asn1Error, match="non-minimal"):
            decode(b"\x02\x81\x01\x05")

    def test_long_length_leading_zero_rejected(self):
        with pytest.raises(Asn1Error, match="leading zero"):
            decode(b"\x02\x82\x00\x81" + b"\x00" * 129)

    def test_empty_input_rejected(self):
        with pytest.raises(Asn1Error):
            decode(b"")

    def test_encoded_slice_is_exact(self):
        inner = encode_integer(7)
        obj = decode(encode_sequence([inner]))
        assert obj.encoded == encode_sequence([inner])
        assert obj[0].encoded == inner
