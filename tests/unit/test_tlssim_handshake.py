"""Unit tests for handshakes, pinning and the interception proxy."""

import pytest

from repro.rootstore import RootStore
from repro.tlssim import InterceptionProxy, PinStore, TlsClient, TlsServer
from repro.tlssim.endpoints import WHITELISTED_DOMAINS
from repro.tlssim.pinning import spki_pin
from repro.x509.chain import ValidationFailure


@pytest.fixture(scope="module")
def identity(traffic_module):
    return traffic_module.server_identity("www.yahoo.com", "VeriSign Class 3 Root")


@pytest.fixture(scope="module")
def traffic_module(request):
    return request.getfixturevalue("traffic")


@pytest.fixture(scope="module")
def device_store(platform_stores):
    return platform_stores.aosp["4.4"].copy("device", read_only=False)


class TestPlainHandshake:
    def test_trusted_connection(self, identity, device_store):
        server = TlsServer("www.yahoo.com", 443, identity)
        client = TlsClient(device_store)
        result = client.connect(server)
        assert result.trusted
        assert not result.intercepted
        assert result.validation.anchor is not None

    def test_untrusted_without_root(self, identity):
        empty = RootStore("empty")
        result = TlsClient(empty).connect(TlsServer("www.yahoo.com", 443, identity))
        assert not result.trusted
        assert result.validation.failure is ValidationFailure.NO_TRUSTED_ROOT

    def test_hostname_checked(self, identity, device_store):
        server = TlsServer("www.imposter.com", 443, identity)
        result = TlsClient(device_store).connect(server)
        assert not result.trusted
        assert result.validation.failure is ValidationFailure.HOSTNAME_MISMATCH


class TestPinning:
    def test_pin_pass(self, identity, device_store):
        pins = PinStore()
        pins.pin("www.yahoo.com", identity.chain[-1])
        client = TlsClient(device_store, pins=pins)
        assert client.connect(TlsServer("www.yahoo.com", 443, identity)).trusted

    def test_pin_fail_on_forged_chain(self, traffic_module, device_store):
        """A proxy-forged chain validates (root installed) but fails pins."""
        identity = traffic_module.server_identity("www.google.com", "GlobalSign Root CA")
        pins = PinStore()
        pins.pin("www.google.com", identity.chain[-1])
        proxy = InterceptionProxy()
        store = device_store.copy("proxied")
        store.add(proxy.root_certificate, source="app")
        client = TlsClient(store, pins=pins, proxy=proxy)
        result = client.connect(TlsServer("www.google.com", 443, identity))
        assert result.intercepted
        assert result.validation.trusted  # chain-level: proxy root trusted
        assert not result.pin_ok  # app-level: pin rejects it
        assert not result.trusted

    def test_unpinned_host_always_passes(self):
        assert PinStore().check("anything.example", ())

    def test_spki_pin_tracks_key_not_bytes(self, traffic_module):
        a = traffic_module.server_identity("www.chase.com", "Entrust Root CA")
        root = a.chain[-1]
        assert spki_pin(root) == spki_pin(root)


class TestInterceptionProxy:
    @pytest.fixture
    def proxy(self):
        whitelist = frozenset(e.hostport for e in WHITELISTED_DOMAINS)
        return InterceptionProxy(whitelist=whitelist)

    def test_intercepts_https(self, proxy):
        assert proxy.should_intercept("mail.yahoo.com", 443)

    def test_whitelisted_host_passes(self, proxy):
        assert not proxy.should_intercept("www.facebook.com", 443)

    def test_non_web_port_passes(self, proxy):
        """§7: SUPL (7275) and MQTT (8883) ports are not intercepted."""
        assert not proxy.should_intercept("supl.google.com", 7275)
        assert not proxy.should_intercept("orcart.facebook.com", 8883)

    def test_forged_chain_shape(self, proxy):
        chain = proxy.forged_chain("mail.yahoo.com")
        leaf, intermediate, root = chain
        assert leaf.matches_hostname("mail.yahoo.com")
        assert intermediate.is_ca and not intermediate.is_self_signed
        assert root.is_ca and root.is_self_signed
        assert "Reality Mine" in str(root.subject)

    def test_forged_chain_cached_per_host(self, proxy):
        assert proxy.forged_chain("a.example") == proxy.forged_chain("a.example")
        assert proxy.forged_chain("a.example") != proxy.forged_chain("b.example")

    def test_forged_chain_validates_under_proxy_root(self, proxy, device_store):
        store = device_store.copy("with-proxy-root")
        store.add(proxy.root_certificate, source="app")
        client = TlsClient(store)
        from repro.x509.chain import ChainVerifier

        verifier = ChainVerifier(store.certificates())
        result = verifier.validate(list(proxy.forged_chain("www.hsbc.com")), "www.hsbc.com")
        assert result.trusted
        assert result.anchor == proxy.root_certificate

    def test_forged_chain_untrusted_without_proxy_root(self, proxy, device_store):
        from repro.x509.chain import ChainVerifier

        verifier = ChainVerifier(device_store.certificates())
        result = verifier.validate(list(proxy.forged_chain("www.hsbc.com")), "www.hsbc.com")
        assert not result.trusted

    def test_relay_decision_log(self, proxy, traffic_module):
        upstream = traffic_module.server_identity("www.hsbc.com", "Entrust Root CA").chain
        chain, intercepted = proxy.relay("www.hsbc.com", 443, upstream)
        assert intercepted and chain != upstream
        chain, intercepted = proxy.relay("www.facebook.com", 443, upstream)
        assert not intercepted and chain == upstream
        assert proxy.decisions == [
            ("www.hsbc.com", 443, True),
            ("www.facebook.com", 443, False),
        ]
