"""Unit tests for handshakes, pinning and the interception proxy."""

import pytest

from repro.rootstore import RootStore
from repro.tlssim import InterceptionProxy, PinStore, TlsClient, TlsServer
from repro.tlssim.endpoints import WHITELISTED_DOMAINS
from repro.tlssim.pinning import spki_pin
from repro.x509.chain import ValidationFailure


@pytest.fixture(scope="module")
def identity(traffic_module):
    return traffic_module.server_identity("www.yahoo.com", "VeriSign Class 3 Root")


@pytest.fixture(scope="module")
def traffic_module(request):
    return request.getfixturevalue("traffic")


@pytest.fixture(scope="module")
def device_store(platform_stores):
    return platform_stores.aosp["4.4"].copy("device", read_only=False)


class TestPlainHandshake:
    def test_trusted_connection(self, identity, device_store):
        server = TlsServer("www.yahoo.com", 443, identity)
        client = TlsClient(device_store)
        result = client.connect(server)
        assert result.trusted
        assert not result.intercepted
        assert result.validation.anchor is not None

    def test_untrusted_without_root(self, identity):
        empty = RootStore("empty")
        result = TlsClient(empty).connect(TlsServer("www.yahoo.com", 443, identity))
        assert not result.trusted
        assert result.validation.failure is ValidationFailure.NO_TRUSTED_ROOT

    def test_hostname_checked(self, identity, device_store):
        server = TlsServer("www.imposter.com", 443, identity)
        result = TlsClient(device_store).connect(server)
        assert not result.trusted
        assert result.validation.failure is ValidationFailure.HOSTNAME_MISMATCH


class TestPinning:
    def test_pin_pass(self, identity, device_store):
        pins = PinStore()
        pins.pin("www.yahoo.com", identity.chain[-1])
        client = TlsClient(device_store, pins=pins)
        assert client.connect(TlsServer("www.yahoo.com", 443, identity)).trusted

    def test_pin_fail_on_forged_chain(self, traffic_module, device_store):
        """A proxy-forged chain validates (root installed) but fails pins."""
        identity = traffic_module.server_identity("www.google.com", "GlobalSign Root CA")
        pins = PinStore()
        pins.pin("www.google.com", identity.chain[-1])
        proxy = InterceptionProxy()
        store = device_store.copy("proxied")
        store.add(proxy.root_certificate, source="app")
        client = TlsClient(store, pins=pins, proxy=proxy)
        result = client.connect(TlsServer("www.google.com", 443, identity))
        assert result.intercepted
        assert result.validation.trusted  # chain-level: proxy root trusted
        assert not result.pin_ok  # app-level: pin rejects it
        assert not result.trusted

    def test_unpinned_host_always_passes(self):
        assert PinStore().check("anything.example", ())

    def test_pinned_host_rejects_empty_chain(self, identity):
        pins = PinStore()
        pins.pin("www.yahoo.com", identity.chain[-1])
        assert not pins.check("www.yahoo.com", ())
        # hostname matching is case-insensitive both ways
        assert not pins.check("WWW.YAHOO.COM", ())
        assert pins.check("other.example", ())

    def test_default_pin_store_covers_pinned_targets(self, traffic_module):
        from repro.tlssim.endpoints import PROBE_TARGETS
        from repro.tlssim.pinning import default_pin_store

        store = default_pin_store(traffic_module)
        for endpoint in PROBE_TARGETS:
            if not endpoint.pinned:
                continue
            assert store.is_pinned(endpoint.host)
            identity = traffic_module.server_identity(
                endpoint.host, endpoint.issuer_ca
            )
            assert store.check(endpoint.host, identity.chain)
        assert not store.is_pinned("www.yahoo.com")

    def test_spki_pin_tracks_key_not_bytes(self, traffic_module):
        a = traffic_module.server_identity("www.chase.com", "Entrust Root CA")
        root = a.chain[-1]
        assert spki_pin(root) == spki_pin(root)


class TestInterceptionProxy:
    @pytest.fixture
    def proxy(self):
        whitelist = frozenset(e.hostport for e in WHITELISTED_DOMAINS)
        return InterceptionProxy(whitelist=whitelist)

    def test_intercepts_https(self, proxy):
        assert proxy.should_intercept("mail.yahoo.com", 443)

    def test_whitelisted_host_passes(self, proxy):
        assert not proxy.should_intercept("www.facebook.com", 443)

    def test_non_web_port_passes(self, proxy):
        """§7: SUPL (7275) and MQTT (8883) ports are not intercepted."""
        assert not proxy.should_intercept("supl.google.com", 7275)
        assert not proxy.should_intercept("orcart.facebook.com", 8883)

    def test_forged_chain_shape(self, proxy):
        chain = proxy.forged_chain("mail.yahoo.com")
        leaf, intermediate, root = chain
        assert leaf.matches_hostname("mail.yahoo.com")
        assert intermediate.is_ca and not intermediate.is_self_signed
        assert root.is_ca and root.is_self_signed
        assert "Reality Mine" in str(root.subject)

    def test_forged_chain_cached_per_host(self, proxy):
        assert proxy.forged_chain("a.example") == proxy.forged_chain("a.example")
        assert proxy.forged_chain("a.example") != proxy.forged_chain("b.example")

    def test_forged_chain_validates_under_proxy_root(self, proxy, device_store):
        store = device_store.copy("with-proxy-root")
        store.add(proxy.root_certificate, source="app")
        client = TlsClient(store)
        from repro.x509.chain import ChainVerifier

        verifier = ChainVerifier(store.certificates())
        result = verifier.validate(list(proxy.forged_chain("www.hsbc.com")), "www.hsbc.com")
        assert result.trusted
        assert result.anchor == proxy.root_certificate

    def test_forged_chain_untrusted_without_proxy_root(self, proxy, device_store):
        from repro.x509.chain import ChainVerifier

        verifier = ChainVerifier(device_store.certificates())
        result = verifier.validate(list(proxy.forged_chain("www.hsbc.com")), "www.hsbc.com")
        assert not result.trusted

    def test_relay_decision_log(self, proxy, traffic_module):
        upstream = traffic_module.server_identity("www.hsbc.com", "Entrust Root CA").chain
        chain, intercepted = proxy.relay("www.hsbc.com", 443, upstream)
        assert intercepted and chain != upstream
        chain, intercepted = proxy.relay("www.facebook.com", 443, upstream)
        assert not intercepted and chain == upstream
        assert proxy.decisions == [
            ("www.hsbc.com", 443, True),
            ("www.facebook.com", 443, False),
        ]

    def test_whitelisted_relay_returns_upstream_untouched(
        self, proxy, traffic_module
    ):
        """A whitelisted relay is pass-through: the exact upstream chain
        object, not a re-signed copy of it."""
        upstream = traffic_module.server_identity(
            "www.twitter.com", "VeriSign Class 3 Root"
        ).chain
        chain, intercepted = proxy.relay("www.twitter.com", 443, upstream)
        assert not intercepted
        assert chain is upstream

    def test_same_seed_regenerates_identical_pki(self):
        a = InterceptionProxy(seed="campaign-7")
        b = InterceptionProxy(seed="campaign-7")
        c = InterceptionProxy(seed="campaign-8")
        assert a.root_certificate == b.root_certificate
        assert a.root_certificate != c.root_certificate
        assert a.forged_chain("mail.yahoo.com") == b.forged_chain("mail.yahoo.com")

    def test_intermediate_shared_across_hosts(self, proxy):
        """One signing intermediate serves every forged leaf — only the
        leaf differs between hosts."""
        chain_a = proxy.forged_chain("a.example")
        chain_b = proxy.forged_chain("b.example")
        assert chain_a[1] is chain_b[1]
        assert chain_a[2] is chain_b[2]
        assert chain_a[0] != chain_b[0]
