"""Unit tests for the sharded persistent storage backend.

Covers the envelope helpers, the append-only segment logs (including
the three crash-truncation cases the buildcache suite also pins), the
content-addressed certificate store, the per-root leaf shards, and the
backend protocol the Notary/dataset program against.
"""

import hashlib
import pickle

import pytest

from repro.faults.quarantine import ErrorCategory, Quarantine
from repro.storage import (
    CertStore,
    DiskBackend,
    EnvelopeError,
    InMemoryBackend,
    LeafShardStore,
    SegmentLog,
    ShardedLeafList,
    StorageBackend,
    read_envelope,
    shard_key_for,
    write_envelope,
)
from repro.storage.envelope import atomic_write
from repro.storage.segment import SEGMENT_MAGIC, SegmentCorruption

MAGIC = b"TEST0001"


@pytest.fixture(scope="module")
def leaves(traffic, catalog):
    """A real mixed current/expired leaf set from one catalog profile."""
    profile = next(
        p for p in catalog.core if p.current_leaves >= 20 and p.expired_leaves >= 2
    )
    return list(traffic.leaves_for_profile(profile))


@pytest.fixture(scope="module")
def root_cert(traffic, catalog, factory):
    profile = next(p for p in catalog.core if p.current_leaves >= 20)
    return factory.root_certificate(profile)


class TestEnvelope:
    def test_round_trip(self):
        blob = write_envelope(MAGIC, b"payload bytes")
        assert read_envelope(MAGIC, blob) == b"payload bytes"

    def test_empty_blob(self):
        with pytest.raises(EnvelopeError) as excinfo:
            read_envelope(MAGIC, b"")
        assert excinfo.value.reason == "empty"

    def test_torn_inside_magic(self):
        blob = write_envelope(MAGIC, b"payload")
        with pytest.raises(EnvelopeError) as excinfo:
            read_envelope(MAGIC, blob[:4])
        assert excinfo.value.reason == "truncated-header"

    def test_torn_inside_digest_trailer(self):
        blob = write_envelope(MAGIC, b"payload")
        with pytest.raises(EnvelopeError) as excinfo:
            read_envelope(MAGIC, blob[: len(MAGIC) + 17])
        assert excinfo.value.reason == "truncated-header"

    def test_wrong_magic(self):
        blob = write_envelope(MAGIC, b"payload")
        with pytest.raises(EnvelopeError) as excinfo:
            read_envelope(b"XXXX9999", blob)
        assert excinfo.value.reason == "bad-magic"

    def test_bitflip_fails_digest(self):
        blob = bytearray(write_envelope(MAGIC, b"payload"))
        blob[-1] ^= 0xFF
        with pytest.raises(EnvelopeError) as excinfo:
            read_envelope(MAGIC, bytes(blob))
        assert excinfo.value.reason == "digest-mismatch"

    def test_atomic_write_leaves_no_temp_litter(self, tmp_path):
        target = tmp_path / "sub" / "entry.bin"
        atomic_write(target, b"published")
        assert target.read_bytes() == b"published"
        assert [p.name for p in target.parent.iterdir()] == ["entry.bin"]


class TestSegmentLog:
    def test_append_read_round_trip(self, tmp_path):
        log = SegmentLog.create(tmp_path / "a.seg")
        locators = [log.append(body) for body in (b"one", b"two" * 100, b"")]
        for (offset, length), body in zip(locators, (b"one", b"two" * 100, b"")):
            assert log.read(offset, length) == body
        log.close()

    def test_reopen_recovers_all_records(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        bodies = [f"record-{i}".encode() for i in range(10)]
        locators = [log.append(body) for body in bodies]
        log.close()
        reopened, damage = SegmentLog.open(path)
        assert damage == []
        assert [body for _, body in reopened.scan()] == bodies
        for (offset, length), body in zip(locators, bodies):
            assert reopened.read(offset, length) == body

    def test_crash_torn_inside_magic(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        log.append(b"doomed")
        log.close()
        path.write_bytes(path.read_bytes()[:4])
        reopened, damage = SegmentLog.open(path)
        assert [d.reason for d in damage] == ["truncated-header"]
        # the file is rebuilt to a fresh, usable segment
        assert path.read_bytes() == SEGMENT_MAGIC
        offset, length = reopened.append(b"fresh")
        assert reopened.read(offset, length) == b"fresh"

    def test_crash_torn_inside_record_digest(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        keep_offset, keep_length = log.append(b"survivor")
        log.append(b"torn away")
        log.close()
        blob = path.read_bytes()
        # cut inside the second record's 32-byte digest trailer
        cut = len(SEGMENT_MAGIC) + 4 + 32 + len(b"survivor") + 4 + 15
        path.write_bytes(blob[:cut])
        reopened, damage = SegmentLog.open(path)
        assert [d.reason for d in damage] == ["truncated-record"]
        # truncated back to the last intact boundary: survivor readable,
        # the torn tail gone, appends land cleanly after it
        assert reopened.read(keep_offset, keep_length) == b"survivor"
        assert [body for _, body in reopened.scan()] == [b"survivor"]
        offset, length = reopened.append(b"after crash")
        assert reopened.read(offset, length) == b"after crash"

    def test_crash_zero_length_file(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        log.append(b"doomed")
        log.close()
        path.write_bytes(b"")
        reopened, damage = SegmentLog.open(path)
        assert [d.reason for d in damage] == ["truncated-header"]
        assert path.read_bytes() == SEGMENT_MAGIC
        offset, length = reopened.append(b"fresh")
        assert reopened.read(offset, length) == b"fresh"

    def test_crash_torn_record_body(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        log.append(b"x" * 1000)
        log.close()
        path.write_bytes(path.read_bytes()[:-100])
        reopened, damage = SegmentLog.open(path)
        assert [d.reason for d in damage] == ["truncated-record"]
        assert list(reopened.scan()) == []

    def test_bitflip_mid_file_detected(self, tmp_path):
        path = tmp_path / "a.seg"
        log = SegmentLog.create(path)
        offset, length = log.append(b"flip me")
        log.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        reopened, damage = SegmentLog.open(path)
        assert [d.reason for d in damage] == ["digest-mismatch"]
        with pytest.raises(SegmentCorruption):
            reopened.read(offset, length)

    def test_open_never_raises_on_garbage(self, tmp_path):
        path = tmp_path / "a.seg"
        path.write_bytes(b"\x00" * 200)
        _, damage = SegmentLog.open(path)
        assert damage  # reported, not raised


class TestCertStore:
    def test_content_addressing_dedupes(self, tmp_path, root_cert):
        store = CertStore(tmp_path / "certs")
        first = store.add(root_cert.encoded)
        second = store.add(root_cert.encoded)
        assert first == second == hashlib.sha256(root_cert.encoded).digest()
        assert len(store) == 1

    def test_round_trip_and_parse(self, tmp_path, root_cert):
        store = CertStore(tmp_path / "certs")
        digest = store.add(root_cert.encoded)
        assert store.der(digest) == root_cert.encoded
        assert store.certificate(digest) == root_cert

    def test_survives_reopen(self, tmp_path, leaves):
        store = CertStore(tmp_path / "certs")
        digests = [store.add(leaf.certificate.encoded) for leaf in leaves]
        store.close()
        reopened = CertStore(tmp_path / "certs")
        assert len(reopened) == len(set(digests))
        for digest, leaf in zip(digests, leaves):
            assert reopened.certificate(digest) == leaf.certificate

    def test_segments_roll_at_size_bound(self, tmp_path, leaves):
        store = CertStore(tmp_path / "certs", segment_bytes=2048)
        for leaf in leaves:
            store.add(leaf.certificate.encoded)
        stats = store.stats()
        assert stats["segments"] > 1
        # every certificate still readable across the rolled segments
        for leaf in leaves:
            digest = hashlib.sha256(leaf.certificate.encoded).digest()
            assert store.der(digest) == leaf.certificate.encoded

    def test_parse_cache_is_bounded(self, tmp_path, leaves):
        store = CertStore(tmp_path / "certs", parse_cache=4)
        for leaf in leaves:
            store.add_certificate(leaf.certificate)
        assert store.stats()["parse_cache_entries"] <= 4

    def test_torn_tail_quarantined_on_reopen(self, tmp_path, root_cert):
        quarantine = Quarantine()
        store = CertStore(tmp_path / "certs")
        store.add(root_cert.encoded)
        store.close()
        segment = next((tmp_path / "certs").glob("certs-*.seg"))
        segment.write_bytes(segment.read_bytes()[:-5])
        reopened = CertStore(tmp_path / "certs", quarantine=quarantine)
        records = list(quarantine)
        assert len(records) == 1
        assert records[0].category is ErrorCategory.CACHE_CORRUPTION
        assert records[0].where.startswith("certstore:")
        # the damaged record reads as absence; re-adding rebuilds it
        assert len(reopened) == 0
        digest = reopened.add(root_cert.encoded)
        assert reopened.certificate(digest) == root_cert


class TestLeafShards:
    def test_sharded_list_matches_plain_list(self, tmp_path, leaves, root_cert):
        certs = CertStore(tmp_path / "certs")
        shards = LeafShardStore(tmp_path / "shards", certs)
        sequence = ShardedLeafList(shards)
        key = shard_key_for(root_cert, None)
        for leaf in leaves:
            sequence.append(leaf, shard_key=key)
        assert len(sequence) == len(leaves)
        assert bool(sequence)
        assert list(sequence) == leaves
        assert sequence[0] == leaves[0]
        assert sequence[-1] == leaves[-1]
        assert sequence[2:5] == leaves[2:5]
        with pytest.raises(IndexError):
            sequence[len(leaves)]

    def test_compact_accessors_match_records(self, tmp_path, leaves):
        certs = CertStore(tmp_path / "certs")
        sequence = ShardedLeafList(LeafShardStore(tmp_path / "shards", certs))
        for leaf in leaves:
            sequence.append(leaf)
        for index, leaf in enumerate(leaves):
            assert sequence.expired_at(index) == leaf.expired
            assert sequence.session_count_at(index) == leaf.session_count

    def test_rehydration_cache_is_bounded(self, tmp_path, leaves):
        certs = CertStore(tmp_path / "certs")
        sequence = ShardedLeafList(
            LeafShardStore(tmp_path / "shards", certs), leaf_cache=4
        )
        for leaf in leaves:
            sequence.append(leaf)
        for index in range(len(leaves)):
            sequence[index]
        assert len(sequence._hot) <= 4

    def test_shard_key_groups_by_root_identity(self, root_cert, leaves):
        by_root = shard_key_for(root_cert, None)
        assert by_root == shard_key_for(root_cert, "ignored-when-root-given")
        fallback = shard_key_for(None, leaves[0].issuer_name)
        assert fallback != by_root
        assert len(by_root) == len(fallback) == 40

    def test_distinct_keys_get_distinct_shard_files(self, tmp_path, leaves):
        certs = CertStore(tmp_path / "certs")
        shards = LeafShardStore(tmp_path / "shards", certs)
        sequence = ShardedLeafList(shards)
        sequence.append(leaves[0], shard_key="aa" * 20)
        sequence.append(leaves[1], shard_key="bb" * 20)
        files = sorted(p.name for p in (tmp_path / "shards").glob("shard-*.seg"))
        assert files == [f"shard-{'aa' * 20}.seg", f"shard-{'bb' * 20}.seg"]

    def test_open_shard_handles_are_bounded(self, tmp_path, leaves):
        certs = CertStore(tmp_path / "certs")
        shards = LeafShardStore(tmp_path / "shards", certs, open_shards=2)
        sequence = ShardedLeafList(shards, leaf_cache=0)
        for index, leaf in enumerate(leaves[:8]):
            sequence.append(leaf, shard_key=f"{index:02d}" * 20)
        assert shards.stats()["open_shards"] <= 2
        # evicted shards reopen transparently on read
        assert list(sequence) == leaves[:8]

    def test_torn_shard_tail_quarantined(self, tmp_path, leaves):
        quarantine = Quarantine()
        certs = CertStore(tmp_path / "certs")
        shards = LeafShardStore(
            tmp_path / "shards", certs, quarantine=quarantine
        )
        sequence = ShardedLeafList(shards)
        for leaf in leaves[:3]:
            sequence.append(leaf, shard_key="cc" * 20)
        shards.close()
        shard_file = next((tmp_path / "shards").glob("shard-*.seg"))
        shard_file.write_bytes(shard_file.read_bytes()[:-7])
        # reopening the shard (first read after close) reports damage
        sequence[0]
        records = list(quarantine)
        assert len(records) == 1
        assert records[0].where.startswith("leafshard:")


class TestBackends:
    def test_protocol_membership(self, tmp_path):
        assert isinstance(InMemoryBackend(), StorageBackend)
        assert isinstance(DiskBackend(tmp_path / "store"), StorageBackend)

    def test_in_memory_backend_is_identity(self, root_cert):
        backend = InMemoryBackend()
        assert backend.leaf_sequence() == []
        assert backend.intern_certificate(root_cert) is root_cert
        assert backend.stats() == {}

    def test_disk_backend_interns_to_canonical_instance(
        self, tmp_path, root_cert
    ):
        backend = DiskBackend(tmp_path / "store")
        from repro.x509.certificate import Certificate

        clone = Certificate.from_der(root_cert.encoded)
        assert clone is not root_cert
        first = backend.intern_certificate(root_cert)
        second = backend.intern_certificate(clone)
        assert first is second is root_cert

    def test_disk_backend_stats_cover_both_stores(self, tmp_path, leaves):
        backend = DiskBackend(tmp_path / "store")
        sequence = backend.leaf_sequence()
        for leaf in leaves[:5]:
            sequence.append(leaf)
        backend.intern_certificate(leaves[0].certificate)
        backend.flush()
        stats = backend.stats()
        assert stats["certs_certificates"] >= 5
        assert stats["shards_shards"] >= 1
        assert stats["interned_certificates"] == 1

    def test_leaf_record_pickles_are_addresses_not_certs(self, tmp_path, leaves):
        """The shard record must stay small: certificate *addresses*,
        never embedded DER/parsed certificates."""
        backend = DiskBackend(tmp_path / "store")
        sequence = backend.leaf_sequence()
        sequence.append(leaves[0])
        shard_file = next((tmp_path / "store" / "shards").glob("shard-*.seg"))
        record = next(iter(backend.shards._segment(0).scan()))[1]
        payload = pickle.loads(record)
        assert payload[0] == hashlib.sha256(leaves[0].certificate.encoded).digest()
        assert len(record) < 200
