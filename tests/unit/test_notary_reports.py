"""Tests for Notary ecosystem reports, AKI chain selection, tolerant load."""

import pytest

from repro.notary.database import NotaryDatabase
from repro.notary.reports import ecosystem_report


class TestEcosystemReport:
    @pytest.fixture(scope="class")
    def report(self, notary):
        return ecosystem_report(notary)

    def test_totals(self, notary, report):
        assert report.total_leaves == notary.total_certificates
        assert report.current_leaves == notary.current_certificates
        assert 0 < report.expired_fraction < 0.5

    def test_issuer_concentration(self, report):
        """The web's CA market is concentrated: top-10 carry a large
        share of leaves and an even larger share of sessions."""
        assert report.issuer_concentration_top10 > 0.25
        assert report.session_weighted_top10 >= report.issuer_concentration_top10

    def test_chain_depths(self, report):
        assert set(report.chain_depth_distribution) <= {2, 3}
        assert report.chain_depth_distribution[3] > 0  # intermediates in use
        assert 0 < report.via_intermediate_fraction < 1

    def test_key_sizes(self, report):
        assert set(report.key_size_distribution) == {512}

    def test_validity(self, report):
        assert 300 < report.median_validity_days < 1500

    def test_render(self, report):
        text = report.render()
        assert "top-10 issuer share" in text
        assert "issuing CAs observed" in text

    def test_empty_notary_rejected(self):
        with pytest.raises(ValueError):
            ecosystem_report(NotaryDatabase())


class TestAkiChainSelection:
    def test_colliding_issuer_names_resolved_by_key_id(self):
        """Two CAs with identical subjects: the chain builder must pick
        the one matching the leaf's AuthorityKeyIdentifier."""
        from repro.crypto import DeterministicRandom, generate_keypair
        from repro.x509 import CertificateBuilder, ChainVerifier, Name, build_chain
        from repro.x509.builder import make_root_certificate

        subject = Name.build(CN="Colliding CA", O="X")
        good_kp = generate_keypair(DeterministicRandom("aki-good"))
        evil_kp = generate_keypair(DeterministicRandom("aki-evil"))
        good = make_root_certificate(good_kp, subject)
        evil = make_root_certificate(evil_kp, subject)
        leaf_kp = generate_keypair(DeterministicRandom("aki-leaf"))
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="aki.example.com"))
            .issuer(subject)
            .public_key(leaf_kp.public)
            .serial_number(2)
            .tls_server("aki.example.com")
            .sign(good_kp.private, issuer_public_key=good_kp.public)
        )
        # Evil candidate listed first: name matching alone would pick it.
        path = build_chain(leaf, [evil, good])
        assert path[1] == good
        result = ChainVerifier([good]).validate([leaf, evil, good])
        assert result.trusted


class TestTolerantCacertsLoad:
    def test_corrupt_file_skipped(self, tmp_path, factory, catalog):
        from repro.rootstore import CacertsDirectory, RootStore

        cacerts = CacertsDirectory(tmp_path, rooted=False)
        good = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        cacerts.install(good, system=True)
        # A half-written garbage file lands in the directory.
        (cacerts.base / "deadbeef.0").write_text(
            "-----BEGIN CERTIFICATE-----\nZZZZ\n-----END CERTIFICATE-----\n"
        )
        store = cacerts.load_store()
        assert good in store
        assert len(store) == 1
        assert len(cacerts.load_errors) == 1

    def test_strict_mode_raises(self, tmp_path):
        from repro.rootstore import CacertsDirectory
        from repro.x509 import CertificateError
        from repro.x509.pem import PemError

        cacerts = CacertsDirectory(tmp_path, rooted=False)
        (cacerts.base / "deadbeef.0").write_text(
            "-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n"
        )
        with pytest.raises((CertificateError, PemError)):
            cacerts.load_store(strict=True)