"""Unit tests for PEM armor."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import Name, PemError, pem_decode, pem_decode_all, pem_encode
from repro.x509.builder import make_root_certificate


@pytest.fixture(scope="module")
def der():
    kp = generate_keypair(DeterministicRandom("pem-tests"))
    return make_root_certificate(kp, Name.build(CN="PEM Test Root")).encoded


class TestPem:
    def test_roundtrip(self, der):
        assert pem_decode(pem_encode(der)) == der

    def test_line_length(self, der):
        lines = pem_encode(der).strip().splitlines()
        for line in lines[1:-1]:
            assert len(line) <= 64

    def test_header_footer(self, der):
        text = pem_encode(der)
        assert text.startswith("-----BEGIN CERTIFICATE-----\n")
        assert text.endswith("-----END CERTIFICATE-----\n")

    def test_custom_label(self, der):
        text = pem_encode(der, "TRUSTED CERTIFICATE")
        assert pem_decode(text, "TRUSTED CERTIFICATE") == der
        with pytest.raises(PemError, match="no CERTIFICATE"):
            pem_decode(text)

    def test_multiple_blocks(self, der):
        text = pem_encode(der) + "\n" + pem_encode(der)
        assert pem_decode_all(text) == [der, der]
        with pytest.raises(PemError, match="expected one"):
            pem_decode(text)

    def test_surrounding_text_ignored(self, der):
        text = "subject=/CN=X\n" + pem_encode(der) + "trailing notes\n"
        assert pem_decode(text) == der

    def test_no_block(self):
        with pytest.raises(PemError, match="no CERTIFICATE"):
            pem_decode("not pem at all")

    def test_mismatched_labels(self, der):
        text = pem_encode(der).replace("END CERTIFICATE", "END PRIVATE KEY")
        with pytest.raises(PemError, match="mismatched"):
            pem_decode_all(text)

    def test_bad_base64(self):
        text = "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n"
        # '!' is outside the regex charset so the block does not match at all.
        assert pem_decode_all(text) == []

    def test_corrupted_base64_padding(self, der):
        good = pem_encode(der)
        lines = good.splitlines()
        lines[1] = lines[1][:-1]  # drop one char -> bad padding
        with pytest.raises(PemError, match="invalid base64"):
            pem_decode("\n".join(lines))
