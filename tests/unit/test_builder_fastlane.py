"""The builder's fast lane: memoized encodings and direct construction.

With the fast lane on, :meth:`CertificateBuilder.sign` constructs the
:class:`Certificate` straight from the builder's own fields instead of
re-parsing the DER it just wrote. Every attribute must match what the
parser would have produced, and the emitted bytes must be identical to
the legacy (fast lane off) encoding.
"""

import datetime

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.crypto.fastlane import fastlane_disabled
from repro.x509 import Certificate
from repro.x509.builder import CertificateBuilder, make_root_certificate
from repro.x509.name import Name

ROOT_KEY = generate_keypair(DeterministicRandom("builder-root"))
LEAF_KEY = generate_keypair(DeterministicRandom("builder-leaf"))

FIELDS = (
    "version",
    "serial_number",
    "signature_algorithm",
    "not_before",
    "not_after",
    "public_key",
    "signature",
    "encoded",
    "tbs_encoded",
)


def leaf_builder(**overrides):
    builder = (
        CertificateBuilder()
        .subject(Name.build(CN="www.example.test", O="Example"))
        .issuer(Name.build(CN="Example Root", O="Example", C="US"))
        .public_key(LEAF_KEY.public)
        .serial_number(4242)
        .validity(
            overrides.get("not_before", datetime.datetime(2013, 1, 1)),
            overrides.get("not_after", datetime.datetime(2015, 1, 1)),
        )
        .tls_server("www.example.test")
    )
    if "version" in overrides:
        builder.version(overrides["version"])
    return builder


def assert_matches_parsed(certificate: Certificate):
    parsed = Certificate.from_der(certificate.encoded)
    for field in FIELDS:
        assert getattr(certificate, field) == getattr(parsed, field), field
    assert certificate.subject == parsed.subject
    assert certificate.issuer == parsed.issuer
    assert len(certificate.extensions) == len(parsed.extensions)
    for built, reparsed in zip(certificate.extensions, parsed.extensions):
        assert (built.oid, built.critical, built.value) == (
            reparsed.oid,
            reparsed.critical,
            reparsed.value,
        )


class TestDirectConstructionEquivalence:
    def test_root_certificate(self):
        root = make_root_certificate(
            ROOT_KEY, Name.build(CN="Example Root", O="Example", C="US")
        )
        assert_matches_parsed(root)

    def test_tls_leaf(self):
        leaf = leaf_builder().sign(
            ROOT_KEY.private, issuer_public_key=ROOT_KEY.public
        )
        assert_matches_parsed(leaf)

    def test_v1_certificate_has_no_extensions(self):
        v1 = leaf_builder(version=1).sign(ROOT_KEY.private)
        assert v1.version == 1
        assert v1.extensions == ()
        assert_matches_parsed(v1)

    @pytest.mark.parametrize(
        ("not_before", "not_after"),
        [
            (
                datetime.datetime(2013, 1, 1, microsecond=500),
                datetime.datetime(2015, 1, 1),
            ),
            (
                datetime.datetime(2013, 1, 1, tzinfo=datetime.timezone.utc),
                datetime.datetime(2015, 1, 1, tzinfo=datetime.timezone.utc),
            ),
        ],
        ids=["subsecond", "tz-aware"],
    )
    def test_normalizing_datetimes_take_the_parse_path(self, not_before, not_after):
        # the Time encoding normalizes these inputs, so the builder must
        # fall back to parsing; attributes then mirror the DER exactly.
        leaf = leaf_builder(not_before=not_before, not_after=not_after).sign(
            ROOT_KEY.private
        )
        assert leaf.not_before == Certificate.from_der(leaf.encoded).not_before
        assert leaf.not_before.tzinfo is None
        assert leaf.not_before.microsecond == 0


class TestLaneByteIdentity:
    def test_leaf_bytes_identical_across_lanes(self):
        fast = leaf_builder().sign(
            ROOT_KEY.private, issuer_public_key=ROOT_KEY.public
        )
        with fastlane_disabled():
            legacy = leaf_builder().sign(
                ROOT_KEY.private, issuer_public_key=ROOT_KEY.public
            )
        assert fast.encoded == legacy.encoded

    def test_root_bytes_identical_across_lanes(self):
        subject = Name.build(CN="Example Root", O="Example", C="US")
        fast = make_root_certificate(ROOT_KEY, subject)
        with fastlane_disabled():
            legacy = make_root_certificate(ROOT_KEY, subject)
        assert fast.encoded == legacy.encoded

    def test_name_der_cache_matches_fresh_encoding(self):
        name = Name.build(CN="Cache Me", O="Example")
        cached_twice = (name.to_der(), name.to_der())
        with fastlane_disabled():
            fresh = name.to_der()
        assert cached_twice == (fresh, fresh)
