"""Malformed-input coverage for :mod:`repro.asn1.decoder`.

The wild-data contract: whatever bytes arrive, the decoder fails with
the :class:`Asn1Error` family (a ``ValueError``), never with an
``IndexError``/``KeyError``/``struct.error`` leaking from the parsing
internals.
"""

import random

import pytest

from repro.asn1 import Asn1Error, decode
from repro.x509.certificate import Certificate, CertificateError


@pytest.fixture(scope="module")
def der(factory, catalog):
    return factory.root_certificate(catalog.all_profiles()[0]).encoded


def assert_asn1_family(exc: BaseException) -> None:
    """The decoder's whole error surface: Asn1Error (a ValueError)."""
    assert isinstance(exc, ValueError), type(exc)
    assert not isinstance(exc, (IndexError, KeyError))


class TestTruncation:
    def test_every_truncation_point_raises_asn1_error(self, der):
        for length in range(len(der)):
            try:
                decode(der[:length])
            except Asn1Error as exc:
                assert_asn1_family(exc)
            else:
                pytest.fail(f"truncation to {length} bytes decoded successfully")

    def test_empty_input(self):
        with pytest.raises(Asn1Error, match="truncated"):
            decode(b"")

    def test_lone_tag_byte(self):
        with pytest.raises(Asn1Error):
            decode(b"\x30")


class TestLengthPrefix:
    def test_overlong_definite_length(self):
        # SEQUENCE claiming 0x7f content bytes, providing none.
        with pytest.raises(Asn1Error, match="truncated"):
            decode(b"\x30\x7f")

    def test_overlong_long_form_length(self):
        # Long form: 4 length octets claiming ~4 GiB of content.
        with pytest.raises(Asn1Error):
            decode(b"\x30\x84\xff\xff\xff\xff" + b"\x00" * 16)

    def test_length_octet_count_exceeds_input(self):
        # Says "5 length octets follow" but the input ends first.
        with pytest.raises(Asn1Error):
            decode(b"\x30\x85\x01")

    def test_non_minimal_long_form_rejected(self):
        # 0x81 0x05: long form for a length that fits short form —
        # valid BER, invalid DER.
        with pytest.raises(Asn1Error):
            decode(b"\x30\x81\x05" + b"\x00" * 5)

    def test_inner_length_escapes_outer(self, der):
        # Outer SEQUENCE is consistent, inner TLV claims more content
        # than the outer frame holds.
        inner = b"\x04\x20" + b"A" * 4  # OCTET STRING claiming 32, has 4
        outer = b"\x30" + bytes([len(inner)]) + inner
        obj = decode(outer)
        with pytest.raises(Asn1Error):
            obj.children()

    def test_trailing_garbage_rejected(self, der):
        with pytest.raises(Asn1Error, match="trailing"):
            decode(der + b"\x00")


class TestInvalidStrings:
    def test_invalid_utf8_in_utf8string(self):
        # UTF8String whose content is a lone continuation byte.
        obj = decode(b"\x0c\x01\xff")
        with pytest.raises(Asn1Error) as excinfo:
            obj.as_string()
        assert_asn1_family(excinfo.value)

    def test_invalid_utf8_longer_payload(self):
        obj = decode(b"\x0c\x04ab\xc3\x28")
        with pytest.raises(Asn1Error):
            obj.as_string()

    def test_certificate_with_poisoned_name_rejected(self, der):
        # Poison the first UTF8String/PrintableString content byte in a
        # real certificate; the x509 layer must wrap the failure.
        from repro.faults.injector import _poison_string

        poisoned = _poison_string(der)
        assert poisoned is not None and poisoned != der
        with pytest.raises((Asn1Error, CertificateError)) as excinfo:
            Certificate.from_der(poisoned)
        assert_asn1_family(excinfo.value)


class TestRandomCorruption:
    def test_seeded_fuzz_never_leaks_internal_errors(self, der):
        rng = random.Random("asn1-fuzz")
        for _ in range(300):
            corrupt = bytearray(der)
            for _ in range(rng.randint(1, 8)):
                corrupt[rng.randrange(len(corrupt))] = rng.randrange(256)
            start = rng.randrange(len(corrupt))
            payload = bytes(corrupt[: start + rng.randrange(len(corrupt) - start + 1)])
            try:
                Certificate.from_der(payload)
            except (Asn1Error, CertificateError) as exc:
                assert_asn1_family(exc)
            except ValueError as exc:
                # still the documented family, just not wrapped
                assert_asn1_family(exc)

    def test_random_byte_soup(self):
        rng = random.Random("byte-soup")
        for _ in range(200):
            payload = rng.randbytes(rng.randrange(64))
            try:
                decode(payload)
            except Asn1Error as exc:
                assert_asn1_family(exc)
