"""Tests for name constraints, blacklisting, Google pins and scoped trust."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import RootStore, TrustFlags
from repro.x509 import CertificateBuilder, ChainVerifier, Name
from repro.x509.blacklist import CertificateBlacklist, GooglePinEnforcer
from repro.x509.builder import make_root_certificate
from repro.x509.chain import ValidationFailure
from repro.x509.constraints import NameConstraints, name_constraints_of


@pytest.fixture(scope="module")
def root():
    keypair = generate_keypair(DeterministicRandom("hardening-root"))
    certificate = make_root_certificate(keypair, Name.build(CN="Hardening Root", O="T"))
    return keypair, certificate


def make_leaf(root, host, serial=77):
    root_kp, root_cert = root
    keypair = generate_keypair(DeterministicRandom(f"hardening-{host}-{serial}"))
    return (
        CertificateBuilder()
        .subject(Name.build(CN=host))
        .issuer(root_cert.subject)
        .public_key(keypair.public)
        .serial_number(serial)
        .tls_server(host)
        .sign(root_kp.private, issuer_public_key=root_kp.public)
    )


class TestNameConstraints:
    def test_codec_roundtrip(self):
        constraints = NameConstraints(
            permitted=("gov.ve", "mil.ve"), excluded=("example.com",)
        )
        parsed = NameConstraints.from_extension(constraints.to_extension())
        assert parsed == constraints

    def test_permitted_semantics(self):
        constraints = NameConstraints(permitted=("gov.ve",))
        assert constraints.allows("gov.ve")
        assert constraints.allows("portal.gov.ve")
        assert not constraints.allows("evilgov.ve")
        assert not constraints.allows("www.google.com")

    def test_excluded_semantics(self):
        constraints = NameConstraints(excluded=("bank.example",))
        assert not constraints.allows("www.bank.example")
        assert constraints.allows("other.example")

    def test_excluded_beats_permitted(self):
        constraints = NameConstraints(
            permitted=("example.com",), excluded=("secret.example.com",)
        )
        assert constraints.allows("www.example.com")
        assert not constraints.allows("x.secret.example.com")

    def test_empty_allows_everything(self):
        assert NameConstraints().allows("anything.at.all")

    def test_constrained_ca_in_chain(self, root):
        """A government-style CA constrained to its ccTLD can no longer
        vouch for google.com -- §8's strict-store mechanism."""
        root_kp, _ = root
        constrained_kp = generate_keypair(DeterministicRandom("constrained-ca"))
        constrained_root = (
            CertificateBuilder()
            .subject(Name.build(CN="National CA", C="VE"))
            .public_key(constrained_kp.public)
            .ca(True)
            .add_extension(
                NameConstraints(permitted=("gob.ve",)).to_extension()
            )
            .self_sign(constrained_kp.private)
        )
        in_scope = (
            CertificateBuilder()
            .subject(Name.build(CN="portal.gob.ve"))
            .issuer(constrained_root.subject)
            .public_key(constrained_kp.public)
            .serial_number(2)
            .tls_server("portal.gob.ve")
            .sign(constrained_kp.private, issuer_public_key=constrained_kp.public)
        )
        out_of_scope = (
            CertificateBuilder()
            .subject(Name.build(CN="www.google.com"))
            .issuer(constrained_root.subject)
            .public_key(constrained_kp.public)
            .serial_number(3)
            .tls_server("www.google.com")
            .sign(constrained_kp.private, issuer_public_key=constrained_kp.public)
        )
        verifier = ChainVerifier([constrained_root])
        assert verifier.validate([in_scope], "portal.gob.ve").trusted
        result = verifier.validate([out_of_scope], "www.google.com")
        assert not result.trusted
        assert result.failure is ValidationFailure.NAME_CONSTRAINT_VIOLATION

    def test_accessor(self, root):
        _, root_cert = root
        assert name_constraints_of(root_cert) is None

    def test_non_dns_cn_not_constrained(self, root):
        """A constrained CA may issue an intermediate named like a CA
        ('Foo Issuing CA') without tripping dNSName constraints."""
        root_kp, _ = root
        constraints = NameConstraints(permitted=("gob.ve",))
        intermediate = (
            CertificateBuilder()
            .subject(Name.build(CN="National Issuing CA", O="VE Gov"))
            .public_key(root_kp.public)
            .ca(True)
            .self_sign(root_kp.private)
        )
        assert constraints.allows_certificate(intermediate)
        # ...but a DNS-shaped CN is still checked.
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="www.google.com"))
            .public_key(root_kp.public)
            .self_sign(root_kp.private)
        )
        assert not constraints.allows_certificate(leaf)


class TestBlacklist:
    def test_serial_ban(self, root):
        leaf = make_leaf(root, "banned.example.com", serial=666)
        blacklist = CertificateBlacklist()
        blacklist.ban_serial(666)
        assert blacklist.is_blacklisted(leaf)
        assert blacklist.rejects_chain([leaf]) == leaf

    def test_key_ban_catches_reissue(self, root):
        """Banning the key rejects any certificate carrying it."""
        first = make_leaf(root, "fraud.example.com", serial=1)
        blacklist = CertificateBlacklist()
        blacklist.ban_key(first)
        # Fraudster re-issues with a new serial and subject, same key.
        root_kp, root_cert = root
        reissued = (
            CertificateBuilder()
            .subject(Name.build(CN="innocent.example.com"))
            .issuer(root_cert.subject)
            .public_key(first.public_key)
            .serial_number(99)
            .sign(root_kp.private, issuer_public_key=root_kp.public)
        )
        assert blacklist.is_blacklisted(reissued)

    def test_clean_chain_passes(self, root):
        leaf = make_leaf(root, "fine.example.com")
        assert CertificateBlacklist().rejects_chain([leaf]) is None

    def test_verifier_integration(self, root):
        leaf = make_leaf(root, "banned2.example.com", serial=13)
        blacklist = CertificateBlacklist()
        blacklist.ban_serial(13)
        verifier = ChainVerifier([root[1]], blacklist=blacklist)
        result = verifier.validate([leaf])
        assert result.failure is ValidationFailure.BLACKLISTED
        # Without the blacklist the same chain validates.
        assert ChainVerifier([root[1]]).validate([leaf]).trusted


class TestGooglePins:
    def test_domain_scope(self):
        enforcer = GooglePinEnforcer()
        assert enforcer.applies_to("www.google.com")
        assert enforcer.applies_to("mail.google.co.uk")
        assert enforcer.applies_to("gmail.com")
        assert not enforcer.applies_to("www.yahoo.com")
        assert not enforcer.applies_to("evilgoogle.com")

    def test_fraudulent_google_cert_rejected(self, root):
        """§2: Android 4.4 rejects Google chains from non-pinned CAs even
        when the CA is in the root store."""
        leaf = make_leaf(root, "www.google.com")
        enforcer = GooglePinEnforcer()  # root's key NOT allow-listed
        verifier = ChainVerifier([root[1]], google_pins=enforcer)
        result = verifier.validate([leaf], "www.google.com")
        assert not result.trusted
        assert result.failure is ValidationFailure.PIN_VIOLATION

    def test_legitimate_google_chain_passes(self, root):
        leaf = make_leaf(root, "www.google.com")
        enforcer = GooglePinEnforcer()
        enforcer.allow_issuer(root[1])
        verifier = ChainVerifier([root[1]], google_pins=enforcer)
        assert verifier.validate([leaf], "www.google.com").trusted

    def test_non_google_domain_unaffected(self, root):
        leaf = make_leaf(root, "www.yahoo.com")
        enforcer = GooglePinEnforcer()
        verifier = ChainVerifier([root[1]], google_pins=enforcer)
        assert verifier.validate([leaf], "www.yahoo.com").trusted


class TestScopedTrust:
    def test_email_only_anchor_rejected_for_server_auth(self, root):
        leaf = make_leaf(root, "scoped.example.com")
        store = RootStore("scoped")
        store.add(
            root[1],
            trust=TrustFlags(server_auth=False, email=True, code_signing=False),
        )
        verifier = ChainVerifier.for_store(store, required_usage="server_auth")
        result = verifier.validate([leaf], "scoped.example.com")
        assert not result.trusted
        assert result.failure is ValidationFailure.USAGE_NOT_PERMITTED

    def test_websites_anchor_accepted(self, root):
        leaf = make_leaf(root, "scoped.example.com")
        store = RootStore("scoped")
        store.add(root[1], trust=TrustFlags.websites_only())
        verifier = ChainVerifier.for_store(store, required_usage="server_auth")
        assert verifier.validate([leaf], "scoped.example.com").trusted

    def test_android_policy_ignores_scope(self, root):
        """Without required_usage (Android's model), scope is ignored --
        the §2 policy gap."""
        leaf = make_leaf(root, "scoped.example.com")
        store = RootStore("scoped")
        store.add(
            root[1],
            trust=TrustFlags(server_auth=False, email=True, code_signing=False),
        )
        verifier = ChainVerifier.for_store(store)
        assert verifier.validate([leaf], "scoped.example.com").trusted

    def test_disabled_entries_excluded(self, root):
        leaf = make_leaf(root, "scoped.example.com")
        store = RootStore("scoped")
        store.add(root[1])
        store.disable(root[1])
        verifier = ChainVerifier.for_store(store)
        assert not verifier.validate([leaf]).trusted
