"""Unit tests for the live study engine: cadence, pump bookkeeping,
warming snapshot shape.

The expensive end-to-end properties (byte-identity with a batch study,
fleet broadcast) live in ``tests/integration``; here the Republisher is
driven against a stub engine with a fake clock so every cadence branch
is exercised in microseconds.
"""

import pytest

from repro.analysis.report import STUDY_JSON_SCHEMA
from repro.stream import Republisher, StreamConfig, StreamEngine, placeholder_snapshot


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubEngine:
    """Just the attributes the Republisher reads, plus a snapshot stub."""

    def __init__(self):
        self.ingested_sessions = 0
        self.ingested_leaves = 0
        self.diffs = []
        self.exhausted = False
        self.snapshots_built = 0

    def snapshot(self, generation: int):
        self.snapshots_built += 1
        return {"generation": generation}


class TestRepublisherCadence:
    def test_not_due_without_events(self):
        republisher = Republisher(StubEngine(), every_sessions=1, clock=FakeClock())
        assert not republisher.due()
        assert republisher.maybe_publish() is None

    def test_not_due_before_first_diff(self):
        # extended_fraction (and friends) raise on an empty diff list, so
        # a publish before the first session diff exists must be held.
        engine = StubEngine()
        engine.ingested_sessions = 5
        republisher = Republisher(engine, every_sessions=1, clock=FakeClock())
        assert not republisher.due()
        engine.diffs.append(object())
        assert republisher.due()

    def test_session_cadence(self):
        engine = StubEngine()
        engine.diffs.append(object())
        republisher = Republisher(engine, every_sessions=10, clock=FakeClock())
        engine.ingested_sessions = 9
        assert not republisher.due()
        engine.ingested_sessions = 10
        assert republisher.due()
        snapshot = republisher.maybe_publish()
        assert snapshot == {"generation": 1}
        # cadence resets: not due again until ten *more* sessions.
        engine.ingested_sessions = 19
        assert not republisher.due()
        engine.ingested_sessions = 20
        assert republisher.due()

    def test_seconds_cadence(self):
        clock = FakeClock()
        engine = StubEngine()
        engine.diffs.append(object())
        engine.ingested_sessions = 1
        republisher = Republisher(engine, every_seconds=2.0, clock=clock)
        assert not republisher.due()
        clock.advance(1.9)
        assert not republisher.due()
        clock.advance(0.2)
        assert republisher.due()
        republisher.publish()
        engine.ingested_sessions = 2
        assert not republisher.due()  # timer restarted at publish

    def test_sink_receives_each_publish(self):
        pushed = []
        engine = StubEngine()
        engine.diffs.append(object())
        republisher = Republisher(
            engine, pushed.append, every_sessions=1, clock=FakeClock()
        )
        engine.ingested_sessions = 1
        republisher.maybe_publish()
        engine.ingested_sessions = 2
        republisher.maybe_publish()
        assert [s["generation"] for s in pushed] == [1, 2]
        assert republisher.last_snapshot == {"generation": 2}

    def test_build_does_not_push(self):
        pushed = []
        engine = StubEngine()
        republisher = Republisher(engine, pushed.append, clock=FakeClock())
        snapshot = republisher.build()
        assert snapshot == {"generation": 1}
        assert pushed == []  # the fleet reload path broadcasts itself


class TestFreshness:
    def test_samples_span_oldest_pending_ingest(self):
        clock = FakeClock()
        engine = StubEngine()
        engine.diffs.append(object())
        republisher = Republisher(engine, every_sessions=1, clock=clock)
        engine.ingested_sessions = 1
        republisher.note_ingest()  # freshness clock starts here
        clock.advance(0.5)
        republisher.note_ingest()  # later events don't restart it
        clock.advance(0.5)
        republisher.publish()
        summary = republisher.freshness()
        assert summary["publishes"] == 1
        assert summary["p50_s"] == summary["p99_s"] == summary["max_s"] == 1.0

    def test_quantiles_over_many_publishes(self):
        clock = FakeClock()
        engine = StubEngine()
        engine.diffs.append(object())
        republisher = Republisher(engine, every_sessions=1, clock=clock)
        for i, staleness in enumerate([0.1, 0.2, 0.3, 0.4, 1.0], start=1):
            engine.ingested_sessions = i
            republisher.note_ingest()
            clock.advance(staleness)
            republisher.publish()
        summary = republisher.freshness()
        assert summary["publishes"] == 5
        assert summary["p50_s"] == pytest.approx(0.3)
        assert summary["p99_s"] == pytest.approx(1.0)
        assert summary["max_s"] == pytest.approx(1.0)

    def test_empty_summary(self):
        republisher = Republisher(StubEngine(), clock=FakeClock())
        assert republisher.freshness() == {"publishes": 0}


class TestPlaceholderSnapshot:
    def test_shape(self):
        config = StreamConfig(population_scale=0.25, notary_scale=0.5)
        snapshot = placeholder_snapshot(config)
        assert snapshot.generation == 0
        assert snapshot.meta["warming"] is True
        assert snapshot.meta["sessions"] == 0
        assert snapshot.meta["population_scale"] == 0.25
        assert snapshot.export["schema"] == STUDY_JSON_SCHEMA
        assert snapshot.export["tables"] == {}
        assert snapshot.export["figures"] == {}


class TestEnginePump:
    @pytest.fixture(scope="class")
    def engine(self):
        return StreamEngine(
            StreamConfig(population_scale=0.01, notary_scale=0.02)
        )

    def test_pump_counts_and_exhaustion(self, engine):
        consumed = engine.pump(16)
        assert consumed == 16
        assert engine.ingested_sessions + engine.ingested_leaves == 16
        assert engine.ingested_sessions > 0
        assert not engine.exhausted
        # every ingested session was diffed on arrival (no faults here)
        assert len(engine.diffs) == engine.ingested_sessions

        total = consumed
        while not engine.exhausted:
            total += engine.pump(512)
        assert engine.ingested_sessions == engine.total_sessions
        assert engine.ingested_sessions + engine.ingested_leaves == total
        assert engine.pump(16) == 0  # drained streams stay drained

    def test_snapshot_over_ingested_state(self, engine):
        snapshot = engine.snapshot(3)
        assert snapshot.generation == 3
        assert snapshot.meta["sessions"] == engine.ingested_sessions
        assert snapshot.meta["diffed_sessions"] == len(engine.diffs)
        assert "warming" not in snapshot.meta
        assert snapshot.sessions  # index_sessions defaults on
