"""Unit tests for certificate parsing, building and fingerprinting."""

import datetime

import pytest

from repro.asn1.objects import EKU_CODE_SIGNING, EKU_SERVER_AUTH
from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import (
    Certificate,
    CertificateBuilder,
    CertificateError,
    Name,
    fingerprint,
    identity_key,
    subject_hash,
)
from repro.x509.builder import make_root_certificate
from repro.x509.fingerprint import CertificateIdentity, equivalence_key


@pytest.fixture(scope="module")
def root_keypair():
    return generate_keypair(DeterministicRandom("cert-tests-root"))


@pytest.fixture(scope="module")
def root(root_keypair):
    return make_root_certificate(
        root_keypair, Name.build(CN="Unit Root CA", O="Unit", C="US")
    )


class TestParsing:
    def test_roundtrip(self, root):
        parsed = Certificate.from_der(root.encoded)
        assert parsed == root
        assert parsed.subject == root.subject
        assert parsed.serial_number == root.serial_number

    def test_fields(self, root):
        assert root.version == 3
        assert root.signature_hash == "sha256"
        assert root.is_self_signed
        assert root.is_ca
        assert root.not_before == datetime.datetime(2000, 1, 1)
        assert root.not_after == datetime.datetime(2030, 1, 1)

    def test_garbage_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_der(b"\x00\x01\x02")
        with pytest.raises(CertificateError, match="not valid DER"):
            Certificate.from_der(b"\x30\x05\x02")

    def test_wrong_structure_rejected(self):
        from repro.asn1 import encode_integer, encode_sequence

        with pytest.raises(CertificateError):
            Certificate.from_der(encode_sequence([encode_integer(1)]))

    def test_truncated_rejected(self, root):
        with pytest.raises(CertificateError):
            Certificate.from_der(root.encoded[:-10])

    def test_bitflip_in_tbs_changes_parse_or_signature(self, root):
        # Flipping a byte inside the serial number region must change
        # the parsed result (signature check failure is tested in chain tests).
        tampered = bytearray(root.encoded)
        # Locate serial number: shortly after the version block.
        tampered[15] ^= 0x01
        try:
            parsed = Certificate.from_der(bytes(tampered))
        except CertificateError:
            return
        assert parsed.encoded != root.encoded


class TestBuilderValidation:
    def test_requires_subject(self, root_keypair):
        builder = CertificateBuilder().public_key(root_keypair.public)
        with pytest.raises(ValueError, match="subject"):
            builder.self_sign(root_keypair.private)

    def test_requires_public_key(self, root_keypair):
        builder = CertificateBuilder().subject(Name.build(CN="X"))
        with pytest.raises(ValueError, match="public key"):
            builder.self_sign(root_keypair.private)

    def test_rejects_bad_serial(self):
        with pytest.raises(ValueError):
            CertificateBuilder().serial_number(0)

    def test_rejects_inverted_validity(self):
        with pytest.raises(ValueError):
            CertificateBuilder().validity(
                datetime.datetime(2015, 1, 1), datetime.datetime(2014, 1, 1)
            )

    def test_rejects_unknown_hash(self):
        with pytest.raises(ValueError):
            CertificateBuilder().signature_hash("sha3")

    def test_rejects_v2(self):
        with pytest.raises(ValueError):
            CertificateBuilder().version(2)


class TestBuilderOutputs:
    def test_sha1_root(self, root_keypair):
        cert = make_root_certificate(
            root_keypair, Name.build(CN="SHA1 Root"), hash_name="sha1"
        )
        assert cert.signature_hash == "sha1"
        assert Certificate.from_der(cert.encoded).signature_hash == "sha1"

    def test_v1_certificate(self, root_keypair):
        cert = make_root_certificate(
            root_keypair, Name.build(CN="Legacy V1 Root"), version=1
        )
        assert cert.version == 1
        assert cert.extensions == ()
        # v1 self-signed roots are grandfathered as CAs.
        assert cert.is_ca

    def test_leaf_is_not_ca(self, root, root_keypair):
        leaf_kp = generate_keypair(DeterministicRandom("leaf-not-ca"))
        leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="leaf.example.com"))
            .issuer(root.subject)
            .public_key(leaf_kp.public)
            .serial_number(7)
            .tls_server("leaf.example.com")
            .sign(root_keypair.private, issuer_public_key=root_keypair.public)
        )
        assert not leaf.is_ca
        assert not leaf.is_self_signed
        assert leaf.subject_alternative_names == ("leaf.example.com",)

    def test_ski_aki_present(self, root):
        from repro.asn1.objects import AUTHORITY_KEY_IDENTIFIER, SUBJECT_KEY_IDENTIFIER

        assert root.extension(SUBJECT_KEY_IDENTIFIER) is not None
        assert root.extension(AUTHORITY_KEY_IDENTIFIER) is not None

    def test_eku(self, root_keypair):
        cert = (
            CertificateBuilder()
            .subject(Name.build(CN="Signer"))
            .public_key(root_keypair.public)
            .extended_key_usage(EKU_CODE_SIGNING, EKU_SERVER_AUTH)
            .self_sign(root_keypair.private)
        )
        assert cert.extended_key_usage.purpose_names == ("codeSigning", "serverAuth")

    def test_path_length_roundtrip(self, root_keypair):
        cert = (
            CertificateBuilder()
            .subject(Name.build(CN="Constrained CA"))
            .public_key(root_keypair.public)
            .ca(True, path_length=2)
            .self_sign(root_keypair.private)
        )
        assert cert.basic_constraints.ca
        assert cert.basic_constraints.path_length == 2

    def test_key_usage_roundtrip(self, root):
        usage = root.key_usage
        assert usage.key_cert_sign
        assert usage.crl_sign
        assert not usage.digital_signature


class TestHostnameMatching:
    @pytest.fixture(scope="class")
    def leaf(self, root_keypair):
        kp = generate_keypair(DeterministicRandom("hostname-leaf"))
        return (
            CertificateBuilder()
            .subject(Name.build(CN="www.example.com"))
            .public_key(kp.public)
            .tls_server("www.example.com", "*.example.net")
            .self_sign(kp.private)
        )

    def test_exact_match(self, leaf):
        assert leaf.matches_hostname("www.example.com")

    def test_case_insensitive(self, leaf):
        assert leaf.matches_hostname("WWW.Example.COM")

    def test_wildcard_one_label(self, leaf):
        assert leaf.matches_hostname("api.example.net")
        assert not leaf.matches_hostname("a.b.example.net")
        assert not leaf.matches_hostname("example.net")

    def test_no_match(self, leaf):
        assert not leaf.matches_hostname("www.example.org")

    def test_cn_fallback_without_san(self, root_keypair):
        cert = make_root_certificate(root_keypair, Name.build(CN="bare.example.com"))
        assert cert.matches_hostname("bare.example.com")


class TestIdentity:
    def test_identity_key_stable_across_reissue(self, root_keypair):
        """Re-issuing with only a new expiry keeps (subject, modulus) equal
        but changes byte identity -- the §4.2 scenario."""
        subject = Name.build(CN="Reissued Root", O="X")
        first = make_root_certificate(
            root_keypair, subject, not_after=datetime.datetime(2020, 1, 1)
        )
        second = make_root_certificate(
            root_keypair, subject, not_after=datetime.datetime(2030, 1, 1)
        )
        assert first.encoded != second.encoded
        assert fingerprint(first) != fingerprint(second)
        assert equivalence_key(first) == equivalence_key(second)
        # The strict identity key (modulus, signature) also differs.
        assert identity_key(first) != identity_key(second)

    def test_identity_object(self, root):
        ident = CertificateIdentity.of(root)
        assert ident.modulus == root.public_key.modulus
        assert len(ident.short) == 8
        int(ident.short, 16)  # must be hex

    def test_subject_hash_is_8_hex(self, root):
        value = subject_hash(root)
        assert len(value) == 8
        int(value, 16)

    def test_subject_hash_ignores_key(self, root_keypair):
        other_kp = generate_keypair(DeterministicRandom("other-subject-hash"))
        a = make_root_certificate(root_keypair, Name.build(CN="Same Subject"))
        b = make_root_certificate(other_kp, Name.build(CN="Same Subject"))
        assert subject_hash(a) == subject_hash(b)

    def test_fingerprint_hashes(self, root):
        assert len(fingerprint(root, "sha256")) == 64
        assert len(fingerprint(root, "sha1")) == 40
