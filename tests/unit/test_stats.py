"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    Estimate,
    bootstrap_fraction,
    wilson_interval,
)


class TestWilson:
    def test_basic_properties(self):
        estimate = wilson_interval(390, 1000)
        assert estimate.value == pytest.approx(0.39)
        assert estimate.low < 0.39 < estimate.high
        assert 0.0 <= estimate.low <= estimate.high <= 1.0

    def test_narrows_with_sample_size(self):
        small = wilson_interval(39, 100)
        large = wilson_interval(3900, 10000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_extremes(self):
        zero = wilson_interval(0, 50)
        assert zero.value == 0.0
        assert zero.low == pytest.approx(0.0, abs=1e-12)
        assert zero.high > 0.0  # Wilson never collapses to a point
        full = wilson_interval(50, 50)
        assert full.high == 1.0
        assert full.low < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_contains(self):
        estimate = wilson_interval(240, 1000)
        assert 0.24 in estimate
        assert 0.9 not in estimate


class TestBootstrap:
    def test_point_estimate_matches_pooled_fraction(self):
        clusters = [(2, 4), (0, 3), (3, 3)]
        estimate = bootstrap_fraction(clusters, rounds=200)
        assert estimate.value == pytest.approx(5 / 10)

    def test_interval_covers_point(self):
        clusters = [(i % 3, 4) for i in range(60)]
        estimate = bootstrap_fraction(clusters, rounds=400)
        assert estimate.low <= estimate.value <= estimate.high

    def test_deterministic_given_seed(self):
        clusters = [(1, 4), (2, 4), (0, 4), (4, 4)]
        a = bootstrap_fraction(clusters, seed=3)
        b = bootstrap_fraction(clusters, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_clustered_variance_exceeds_binomial(self):
        """Perfectly correlated clusters -> wider interval than Wilson."""
        # 30 handsets, each entirely extended or entirely stock.
        clusters = [(4, 4)] * 12 + [(0, 4)] * 18
        boot = bootstrap_fraction(clusters, rounds=600)
        naive = wilson_interval(48, 120)
        assert (boot.high - boot.low) > (naive.high - naive.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_fraction([])
        with pytest.raises(ValueError):
            bootstrap_fraction([(0, 0)])


class TestSessionFractionEstimate:
    def test_headline_fraction_with_ci(self, platform_stores, factory, catalog):
        from repro.analysis.sessions import SessionDiffer
        from repro.analysis.stats import session_fraction_estimate
        from repro.android.population import PopulationConfig, PopulationGenerator
        from repro.netalyzr import collect_dataset

        config = PopulationConfig(seed="stats-tests", scale=0.05)
        population = PopulationGenerator(config, factory, catalog).generate()
        dataset = collect_dataset(population, factory, catalog)
        diffs = SessionDiffer(platform_stores.aosp).diff_all(dataset)
        estimate = session_fraction_estimate(
            diffs, lambda d: d.is_extended, rounds=200
        )
        assert 0.25 <= estimate.value <= 0.50
        assert estimate.low < estimate.value < estimate.high
        # The paper's 39% should sit inside the interval at this scale.
        assert 0.39 in estimate or abs(estimate.value - 0.39) < 0.08
