"""Unit tests for ASN.1 tag model."""

import pytest

from repro.asn1.tags import CONSTRUCTED, Tag, TagClass, UniversalTag


class TestTag:
    def test_universal_identifier_octet(self):
        assert Tag.universal(UniversalTag.INTEGER).identifier_octet == 0x02

    def test_constructed_sets_bit(self):
        tag = Tag.universal(UniversalTag.SEQUENCE, constructed=True)
        assert tag.identifier_octet == 0x30
        assert tag.identifier_octet & CONSTRUCTED

    def test_context_tag(self):
        tag = Tag.context(3)
        assert tag.identifier_octet == 0xA3
        assert tag.is_context(3)
        assert not tag.is_context(0)

    def test_from_octet_roundtrip(self):
        for octet in (0x02, 0x30, 0x31, 0xA0, 0xA3, 0x80, 0x04, 0x17):
            assert Tag.from_octet(octet).identifier_octet == octet

    def test_from_octet_rejects_high_tag_form(self):
        with pytest.raises(ValueError, match="high-tag-number"):
            Tag.from_octet(0x1F)

    def test_tag_number_31_rejected(self):
        with pytest.raises(ValueError, match="low-tag-number"):
            Tag(TagClass.UNIVERSAL, False, 31)

    def test_is_universal(self):
        assert Tag.universal(UniversalTag.NULL).is_universal(UniversalTag.NULL)
        assert not Tag.context(5).is_universal(UniversalTag.NULL)

    def test_str_universal(self):
        assert str(Tag.universal(UniversalTag.OCTET_STRING)) == "OCTET_STRING"

    def test_str_context(self):
        assert str(Tag.context(0)) == "CONTEXT[0]"

    def test_hashable_and_equal(self):
        assert Tag.context(1) == Tag.context(1)
        assert hash(Tag.context(1)) == hash(Tag.context(1))
        assert Tag.context(1) != Tag.context(2)
