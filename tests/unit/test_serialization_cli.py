"""Tests for store serialization and the command-line tools."""

import json

import pytest

from repro.cli import main as cli_main
from repro.rootstore import RootStore, TrustFlags
from repro.rootstore.serialization import (
    load_store,
    save_store,
    store_from_json,
    store_from_pem,
    store_to_json,
    store_to_pem,
)


@pytest.fixture(scope="module")
def sample_store(platform_stores, factory, catalog):
    store = platform_stores.aosp["4.1"].copy("sample", read_only=False)
    crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
    store.add(crazy, source="app:Freedom", trust=TrustFlags.websites_only())
    store.disable(crazy)
    return store


class TestPemBundle:
    def test_roundtrip(self, sample_store):
        text = store_to_pem(sample_store)
        parsed = store_from_pem(text, "roundtrip")
        assert len(parsed) == len(sample_store)
        assert set(parsed) == set(
            sample_store.certificates(include_disabled=True)
        )

    def test_exclude_disabled(self, sample_store):
        text = store_to_pem(sample_store, include_disabled=False)
        parsed = store_from_pem(text)
        assert len(parsed) == len(sample_store) - 1

    def test_pem_loses_metadata_json_keeps_it(self, sample_store):
        via_pem = store_from_pem(store_to_pem(sample_store))
        assert all(entry.enabled for entry in via_pem.entries())
        via_json = store_from_json(store_to_json(sample_store))
        disabled = [e for e in via_json.entries() if not e.enabled]
        assert len(disabled) == 1
        assert disabled[0].source == "app:Freedom"
        assert not disabled[0].trust.code_signing


class TestJsonStore:
    def test_roundtrip_full_metadata(self, sample_store):
        parsed = store_from_json(store_to_json(sample_store))
        assert parsed.name == sample_store.name
        assert len(parsed) == len(sample_store)

    def test_fingerprint_tamper_detected(self, sample_store):
        payload = json.loads(store_to_json(sample_store))
        payload["entries"][0]["sha256"] = "00" * 32
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            store_from_json(json.dumps(payload))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            store_from_json(json.dumps({"schema": 99, "name": "x", "entries": []}))


class TestFileRoundtrip:
    def test_save_load_json(self, sample_store, tmp_path):
        path = save_store(sample_store, tmp_path / "store.json")
        loaded = load_store(path)
        assert len(loaded) == len(sample_store)

    def test_save_load_pem(self, sample_store, tmp_path):
        path = save_store(sample_store, tmp_path / "store.pem")
        loaded = load_store(path, "from-pem")
        assert loaded.name == "from-pem"
        assert len(loaded) == len(sample_store)

    def test_unknown_suffix(self, sample_store, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_store(sample_store, tmp_path / "store.der")
        with pytest.raises(ValueError, match="format"):
            load_store(tmp_path / "missing.xyz")


class TestCli:
    def test_dump_and_diff_stock(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert cli_main(["--seed", "cli-test", "dump-store", "aosp-4.1", str(a)]) == 0
        assert cli_main(["--seed", "cli-test", "dump-store", "aosp-4.1", str(b)]) == 0
        assert cli_main(["diff-store", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "139 shared, 0 added, 0 missing" in out

    def test_diff_detects_change(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        cli_main(["--seed", "cli-test", "dump-store", "aosp-4.1", str(a)])
        cli_main(["--seed", "cli-test", "dump-store", "aosp-4.2", str(b)])
        assert cli_main(["diff-store", str(b), str(a)]) == 1
        assert "1 added" in capsys.readouterr().out

    def test_audit_clean_store(self, tmp_path, capsys):
        a = tmp_path / "clean.json"
        cli_main(["--seed", "cli-test", "dump-store", "aosp-4.4", str(a)])
        code = cli_main(["--seed", "cli-test", "audit-store", str(a)])
        out = capsys.readouterr().out
        assert code == 0  # nothing above HIGH on a stock store
        assert "Audit of" in out

    def test_universe_cache_reused(self, tmp_path, capsys):
        universe = tmp_path / "universe.json"
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        base = ["--seed", "cli-universe", "--universe", str(universe)]
        assert cli_main(base + ["dump-store", "aosp-4.1", str(a)]) == 0
        assert universe.exists()
        # Second invocation loads the cache; output must be identical.
        assert cli_main(base + ["dump-store", "aosp-4.1", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_universe_cache_ignored_on_seed_mismatch(self, tmp_path, capsys):
        universe = tmp_path / "universe.json"
        a = tmp_path / "a.json"
        cli_main(
            ["--seed", "seed-one", "--universe", str(universe),
             "dump-store", "aosp-4.1", str(a)]
        )
        b = tmp_path / "b.json"
        assert (
            cli_main(
                ["--seed", "seed-two", "--universe", str(universe),
                 "dump-store", "aosp-4.1", str(b)]
            )
            == 0
        )
        assert a.read_text() != b.read_text()

    def test_show_cert(self, tmp_path, capsys, factory, catalog):
        from repro.x509.pem import pem_encode

        cert = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        path = tmp_path / "cert.pem"
        path.write_text(pem_encode(cert.encoded))
        assert cli_main(["show-cert", str(path)]) == 0
        out = capsys.readouterr().out
        assert "CRAZY HOUSE" in out
        assert "RSA Public-Key" in out
        assert cli_main(["show-cert", str(path), "--asn1"]) == 0
        out = capsys.readouterr().out
        assert "SEQUENCE" in out

    def test_collect_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "dataset.json"
        assert (
            cli_main(
                ["--seed", "cli-pipeline", "collect", str(path), "--scale", "0.02"]
            )
            == 0
        )
        assert path.exists()
        assert (
            cli_main(
                [
                    "--seed",
                    "cli-pipeline",
                    "analyze",
                    str(path),
                    "--notary-scale",
                    "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "reproduction study report" in out

    def test_audit_tampered_store_fails(
        self, tmp_path, capsys, factory, catalog, platform_stores
    ):
        tampered = platform_stores.aosp["4.4"].copy("tampered", read_only=False)
        tampered.add(
            factory.root_certificate(catalog.by_name("CRAZY HOUSE")),
            source="app:Freedom",
        )
        path = save_store(tampered, tmp_path / "tampered.json")
        # Note: CLI builds its own universe from --seed; use the shared
        # test seed so the reference matches the tampered store's base.
        code = cli_main(["--seed", "test-universe", "audit-store", str(path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "app-installed-root" in out
