"""Tests for Netalyzr dataset JSON round-trips."""

import json

import pytest

from repro.android.population import PopulationConfig, PopulationGenerator
from repro.faults import FaultInjector
from repro.netalyzr import collect_dataset
from repro.netalyzr.serialization import (
    DatasetError,
    DatasetFormatError,
    SchemaVersionError,
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def dataset(factory, catalog):
    config = PopulationConfig(seed="ser-tests", scale=0.02)
    population = PopulationGenerator(config, factory, catalog).generate()
    return collect_dataset(population, factory, catalog)


@pytest.fixture(scope="module")
def faulty_dataset(factory, catalog):
    config = PopulationConfig(seed="ser-tests", scale=0.02)
    population = PopulationGenerator(config, factory, catalog).generate()
    return collect_dataset(
        population, factory, catalog,
        injector=FaultInjector(rate=0.1, seed="ser-tests"),
    )


class TestRoundTrip:
    def test_sessions_preserved(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        assert parsed.session_count == dataset.session_count
        assert (
            parsed.total_certificate_observations
            == dataset.total_certificate_observations
        )

    def test_analysis_statistics_survive(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        assert len(parsed.unique_certificates()) == len(
            dataset.unique_certificates()
        )
        assert parsed.estimated_devices() == dataset.estimated_devices()
        assert parsed.sessions_by_manufacturer() == dataset.sessions_by_manufacturer()
        assert len(parsed.rooted_sessions()) == len(dataset.rooted_sessions())

    def test_probes_survive(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        original = next(s for s in dataset.sessions if s.probes)
        restored = next(
            s for s in parsed.sessions if s.session_id == original.session_id
        )
        assert len(restored.probes) == len(original.probes)
        for a, b in zip(original.probes, restored.probes):
            assert a.hostport == b.hostport
            assert a.validation.trusted == b.validation.trusted
            assert a.pin_ok == b.pin_ok
            assert a.chain == b.chain

    def test_certificate_table_deduplicates(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        references = sum(len(s["roots"]) for s in payload["sessions"])
        assert len(payload["certificates"]) < references / 2

    def test_file_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "dataset.json")
        assert load_dataset(path).session_count == dataset.session_count


class TestValidationOnLoad:
    def test_tampered_certificate_rejected(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        digest = next(iter(payload["certificates"]))
        other = [d for d in payload["certificates"] if d != digest][0]
        payload["certificates"][digest] = payload["certificates"][other]
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            dataset_from_json(json.dumps(payload))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            dataset_from_json(json.dumps({"schema": 42}))

    def test_unknown_schema_error_names_the_version(self):
        with pytest.raises(SchemaVersionError, match=r"version 42"):
            dataset_from_json(json.dumps({"schema": 42}))
        with pytest.raises(SchemaVersionError, match=r"version '2'"):
            # a string "2" is not version 2
            dataset_from_json(json.dumps({"schema": "2"}))

    def test_invalid_json_raises_format_error(self):
        with pytest.raises(DatasetFormatError, match="not valid JSON"):
            dataset_from_json("{truncated")
        with pytest.raises(DatasetFormatError, match="dataset object"):
            dataset_from_json("[1, 2, 3]")

    def test_errors_are_one_typed_family(self):
        assert issubclass(SchemaVersionError, DatasetError)
        assert issubclass(DatasetFormatError, DatasetError)
        assert issubclass(DatasetError, ValueError)


class TestQuarantineRoundTrip:
    def test_quarantine_metadata_preserved(self, faulty_dataset):
        assert len(faulty_dataset.quarantine) > 0
        parsed = dataset_from_json(dataset_to_json(faulty_dataset))
        assert parsed.quarantine.report() == faulty_dataset.quarantine.report()
        for original, restored in zip(
            faulty_dataset.quarantine.records, parsed.quarantine.records
        ):
            assert restored.category is original.category
            assert restored.where == original.where
            assert restored.fingerprint == original.fingerprint
            assert restored.excerpt == original.excerpt

    def test_health_counters_preserved(self, faulty_dataset):
        parsed = dataset_from_json(dataset_to_json(faulty_dataset))
        assert parsed.health.to_dict() == faulty_dataset.health.to_dict()

    def test_degraded_flags_preserved(self, faulty_dataset):
        parsed = dataset_from_json(dataset_to_json(faulty_dataset))
        original_flags = {
            s.session_id: s.degraded for s in faulty_dataset.sessions
        }
        assert any(original_flags.values())
        for session in parsed.sessions:
            assert session.degraded == original_flags[session.session_id]


class TestResilientLoad:
    def test_tampered_certificate_quarantined_not_fatal(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        digest = next(iter(payload["certificates"]))
        other = [d for d in payload["certificates"] if d != digest][0]
        payload["certificates"][digest] = payload["certificates"][other]
        parsed = dataset_from_json(json.dumps(payload), resilient=True)
        assert parsed.session_count == dataset.session_count
        assert any(
            r.where.startswith("certificate-table:")
            for r in parsed.quarantine.records
        )
        # sessions referencing the dropped cert survive, degraded
        assert any(s.degraded for s in parsed.sessions)

    def test_mangled_session_record_dead_lettered(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        payload["sessions"][0] = {"id": payload["sessions"][0]["id"]}
        parsed = dataset_from_json(json.dumps(payload), resilient=True)
        assert parsed.session_count == dataset.session_count - 1
        assert any(
            r.where == f"session:{payload['sessions'][0]['id']}"
            for r in parsed.quarantine.records
        )

    def test_envelope_damage_still_fatal_in_resilient_mode(self):
        with pytest.raises(DatasetFormatError):
            dataset_from_json("{nope", resilient=True)
        with pytest.raises(SchemaVersionError):
            dataset_from_json(json.dumps({"schema": 9}), resilient=True)
