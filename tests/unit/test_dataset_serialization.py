"""Tests for Netalyzr dataset JSON round-trips."""

import json

import pytest

from repro.android.population import PopulationConfig, PopulationGenerator
from repro.netalyzr import collect_dataset
from repro.netalyzr.serialization import (
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def dataset(factory, catalog):
    config = PopulationConfig(seed="ser-tests", scale=0.02)
    population = PopulationGenerator(config, factory, catalog).generate()
    return collect_dataset(population, factory, catalog)


class TestRoundTrip:
    def test_sessions_preserved(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        assert parsed.session_count == dataset.session_count
        assert (
            parsed.total_certificate_observations
            == dataset.total_certificate_observations
        )

    def test_analysis_statistics_survive(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        assert len(parsed.unique_certificates()) == len(
            dataset.unique_certificates()
        )
        assert parsed.estimated_devices() == dataset.estimated_devices()
        assert parsed.sessions_by_manufacturer() == dataset.sessions_by_manufacturer()
        assert len(parsed.rooted_sessions()) == len(dataset.rooted_sessions())

    def test_probes_survive(self, dataset):
        parsed = dataset_from_json(dataset_to_json(dataset))
        original = next(s for s in dataset.sessions if s.probes)
        restored = next(
            s for s in parsed.sessions if s.session_id == original.session_id
        )
        assert len(restored.probes) == len(original.probes)
        for a, b in zip(original.probes, restored.probes):
            assert a.hostport == b.hostport
            assert a.validation.trusted == b.validation.trusted
            assert a.pin_ok == b.pin_ok
            assert a.chain == b.chain

    def test_certificate_table_deduplicates(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        references = sum(len(s["roots"]) for s in payload["sessions"])
        assert len(payload["certificates"]) < references / 2

    def test_file_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "dataset.json")
        assert load_dataset(path).session_count == dataset.session_count


class TestValidationOnLoad:
    def test_tampered_certificate_rejected(self, dataset):
        payload = json.loads(dataset_to_json(dataset))
        digest = next(iter(payload["certificates"]))
        other = [d for d in payload["certificates"] if d != digest][0]
        payload["certificates"][digest] = payload["certificates"][other]
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            dataset_from_json(json.dumps(payload))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            dataset_from_json(json.dumps({"schema": 42}))
