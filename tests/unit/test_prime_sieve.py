"""Regression lock for the sieved prime-generation fast path.

``generate_prime`` with the fast lane on must return *exactly* the same
prime, from exactly the same RNG stream position, as the legacy
trial-division loop — for every seed and bit size. The residue sieve is
a pure pre-filter: it may only discard candidates Miller-Rabin would
have rejected anyway.
"""

import random

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.crypto.fastlane import fastlane_disabled, fastlane_enabled
from repro.crypto.primes import (
    _SIEVE_CHUNKS,
    _WINDOW,
    _window_candidates,
    generate_prime,
    is_probable_prime,
)

SEEDS = [1, 7, 2024, 0xC0FFEE, "tangled-mass"]
BIT_SIZES = [24, 48, 128, 256]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("bits", BIT_SIZES)
def test_sieved_prime_matches_legacy_prime(seed, bits):
    fast_rng, legacy_rng = random.Random(seed), random.Random(seed)
    fast = generate_prime(bits, fast_rng)
    with fastlane_disabled():
        legacy = generate_prime(bits, legacy_rng)
    assert fast == legacy
    # Both lanes must also leave the RNG in the same state, or the next
    # prime of the keypair would diverge.
    assert fast_rng.getstate() == legacy_rng.getstate()


@pytest.mark.parametrize("seed", ["alpha", "beta"])
def test_sieved_keypair_matches_legacy_keypair(seed):
    fast = generate_keypair(DeterministicRandom(seed))
    with fastlane_disabled():
        legacy = generate_keypair(DeterministicRandom(seed))
    # Identical primes -> identical modulus, exponents, CRT fields.
    assert fast.private == legacy.private


@pytest.mark.parametrize("seed", range(8))
def test_window_survivors_match_trial_division(seed):
    rng = random.Random(seed)
    bits = 64
    base = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    survivors = _window_candidates(base, bits)
    sieve_primes = [p for _, chunk in _SIEVE_CHUNKS for p in chunk]
    expected = [
        candidate
        for k in range(_WINDOW)
        if (candidate := base + 2 * k).bit_length() == bits
        and all(candidate % p or candidate == p for p in sieve_primes)
    ]
    assert survivors == expected


def test_window_never_discards_a_prime():
    rng = random.Random(99)
    for _ in range(4):
        bits = 48
        base = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        survivors = set(_window_candidates(base, bits))
        for k in range(_WINDOW):
            candidate = base + 2 * k
            if candidate.bit_length() == bits and is_probable_prime(candidate):
                assert candidate in survivors


def test_tiny_bit_sizes_keep_sieve_primes_eligible():
    # A 13-bit request can land on a window containing actual sieve
    # primes; the sieve must not strike a candidate for being equal to
    # the very prime that divides it.
    for seed in range(6):
        fast_rng, legacy_rng = random.Random(seed), random.Random(seed)
        fast = generate_prime(13, fast_rng)
        with fastlane_disabled():
            legacy = generate_prime(13, legacy_rng)
        assert fast == legacy


def test_fastlane_toggle_restores():
    assert fastlane_enabled()
    with fastlane_disabled():
        assert not fastlane_enabled()
    assert fastlane_enabled()
