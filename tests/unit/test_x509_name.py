"""Unit tests for the X.500 name model."""

import pytest

from repro.asn1.objects import COMMON_NAME, ORGANIZATION
from repro.x509 import Name, NameAttribute, RelativeDistinguishedName


class TestNameBuild:
    def test_build_and_get(self):
        name = Name.build(CN="Example Root", O="Example Inc", C="US")
        assert name.get("CN") == "Example Root"
        assert name.get("O") == "Example Inc"
        assert name.get("C") == "US"
        assert name.get("OU") is None

    def test_common_name_property(self):
        assert Name.build(CN="X").common_name == "X"
        assert Name.build(O="Org only").common_name is None

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            Name.build()

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError, match="unknown DN attribute"):
            Name.build(XYZZY="nope")

    def test_dotted_oid_attribute_accepted(self):
        name = Name(
            [RelativeDistinguishedName((NameAttribute(COMMON_NAME, "X"),))]
        )
        assert name.common_name == "X"


class TestNameDer:
    def test_roundtrip(self):
        name = Name.build(CN="Tëst CA", O="Test Org", OU="Unit", C="DE")
        parsed = Name.from_der(name.to_der())
        assert parsed == name
        assert parsed.get("CN") == "Tëst CA"

    def test_country_stays_printable(self):
        der = Name.build(C="US").to_der()
        # PrintableString tag 0x13 must appear for the country value.
        assert b"\x13\x02US" in der

    def test_utf8_for_non_ascii(self):
        der = Name.build(CN="Türktrust").to_der()
        assert "Türktrust".encode("utf-8") in der

    def test_empty_rdn_rejected(self):
        with pytest.raises(ValueError):
            RelativeDistinguishedName(())


class TestDialects:
    @pytest.fixture
    def name(self):
        return Name.build(C="US", O="U.S. Government", OU="DoD", CN="DoD CLASS 3 Root CA")

    def test_rfc4514_most_specific_first(self, name):
        assert (
            name.format("rfc4514")
            == "CN=DoD CLASS 3 Root CA,OU=DoD,O=U.S. Government,C=US"
        )

    def test_openssl_dialect(self, name):
        assert (
            name.format("openssl")
            == "/C=US/O=U.S. Government/OU=DoD/CN=DoD CLASS 3 Root CA"
        )

    def test_display_dialect(self, name):
        assert (
            name.format("display")
            == "C=US, O=U.S. Government, OU=DoD, CN=DoD CLASS 3 Root CA"
        )

    def test_unknown_dialect(self, name):
        with pytest.raises(ValueError):
            name.format("ldap")

    def test_str_uses_rfc4514(self, name):
        assert str(name) == name.format("rfc4514")


class TestNormalization:
    def test_dialects_do_not_affect_equality(self):
        # Same logical name built in different attribute orders.
        a = Name.build(CN="Root", O="Org", C="US")
        b = Name.build(C="US", O="Org", CN="Root")
        assert a == b
        assert hash(a) == hash(b)

    def test_whitespace_collapsed(self):
        a = Name.build(CN="Root  CA")
        b = Name.build(CN="Root CA")
        assert a == b

    def test_case_folded(self):
        assert Name.build(CN="ROOT ca") == Name.build(CN="root CA")

    def test_different_values_differ(self):
        assert Name.build(CN="A") != Name.build(CN="B")

    def test_different_attrs_differ(self):
        assert Name.build(CN="A") != Name.build(O="A")


class TestNameAttribute:
    def test_short_name_known(self):
        assert NameAttribute(ORGANIZATION, "X").short_name == "O"

    def test_str(self):
        assert str(NameAttribute(COMMON_NAME, "Root")) == "CN=Root"

    def test_multi_attribute_rdn_roundtrip(self):
        rdn = RelativeDistinguishedName(
            (NameAttribute(COMMON_NAME, "X"), NameAttribute(ORGANIZATION, "Y"))
        )
        name = Name([rdn])
        parsed = Name.from_der(name.to_der())
        assert sorted(str(a) for a in parsed.attributes()) == ["CN=X", "O=Y"]
