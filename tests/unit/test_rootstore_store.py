"""Unit tests for the RootStore container."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import RootStore, TrustFlags
from repro.rootstore.store import StorePermissionError
from repro.x509 import Name
from repro.x509.builder import make_root_certificate


@pytest.fixture(scope="module")
def certs():
    out = []
    for index in range(4):
        kp = generate_keypair(DeterministicRandom(f"store-test-{index}"))
        out.append(make_root_certificate(kp, Name.build(CN=f"Store Test CA {index}")))
    return out


class TestBasicOperations:
    def test_construction(self, certs):
        store = RootStore("test", certs[:2])
        assert len(store) == 2
        assert certs[0] in store
        assert certs[2] not in store

    def test_add_and_remove(self, certs):
        store = RootStore("test")
        store.add(certs[0])
        assert len(store) == 1
        assert store.remove(certs[0])
        assert len(store) == 0
        assert not store.remove(certs[0])

    def test_add_is_idempotent(self, certs):
        store = RootStore("test")
        store.add(certs[0])
        store.add(certs[0])
        assert len(store) == 1

    def test_iteration(self, certs):
        store = RootStore("test", certs[:3])
        assert set(store) == set(certs[:3])

    def test_find_by_subject(self, certs):
        store = RootStore("test", certs[:3])
        found = store.find_by_subject(certs[1].subject)
        assert found == [certs[1]]


class TestReadOnly:
    def test_add_requires_system(self, certs):
        store = RootStore("system", read_only=True)
        with pytest.raises(StorePermissionError):
            store.add(certs[0])
        store.add(certs[0], system=True)
        assert certs[0] in store

    def test_remove_requires_system(self, certs):
        store = RootStore("system", certs[:1], read_only=True)
        with pytest.raises(StorePermissionError):
            store.remove(certs[0])
        assert store.remove(certs[0], system=True)

    def test_disable_never_requires_system(self, certs):
        """Android settings let users disable system roots (§2)."""
        store = RootStore("system", certs[:1], read_only=True)
        assert store.disable(certs[0])
        assert store.certificates() == []
        assert store.certificates(include_disabled=True) == [certs[0]]
        assert store.enable(certs[0])
        assert store.certificates() == [certs[0]]

    def test_disable_missing(self, certs):
        store = RootStore("system", read_only=True)
        assert not store.disable(certs[0])
        assert not store.enable(certs[0])


class TestEquivalence:
    def test_contains_equivalent(self):
        """A re-issued root (same key+subject, new dates) is equivalent."""
        import datetime

        kp = generate_keypair(DeterministicRandom("equiv-store"))
        subject = Name.build(CN="Equivalent Root")
        first = make_root_certificate(kp, subject, not_after=datetime.datetime(2020, 1, 1))
        second = make_root_certificate(kp, subject, not_after=datetime.datetime(2031, 1, 1))
        store = RootStore("test", [first])
        assert second not in store  # strict identity differs
        assert store.contains_equivalent(second)

    def test_not_equivalent_different_key(self, certs):
        store = RootStore("test", certs[:1])
        assert not store.contains_equivalent(certs[1])


class TestCopy:
    def test_copy_is_independent(self, certs):
        store = RootStore("orig", certs[:2])
        clone = store.copy("clone")
        clone.add(certs[2])
        assert len(store) == 2
        assert len(clone) == 3
        assert clone.name == "clone"

    def test_copy_preserves_disabled_state_independently(self, certs):
        store = RootStore("orig", certs[:1])
        clone = store.copy()
        clone.disable(certs[0])
        assert store.entry_for(certs[0]).enabled
        assert not clone.entry_for(certs[0]).enabled

    def test_copy_can_drop_read_only(self, certs):
        store = RootStore("orig", certs[:1], read_only=True)
        clone = store.copy(read_only=False)
        clone.add(certs[1])  # no error
        assert len(clone) == 2


class TestTrustFlags:
    def test_android_policy_trusts_everything(self):
        flags = TrustFlags.all()
        assert flags.server_auth and flags.email and flags.code_signing

    def test_mozilla_scoped_policy(self):
        flags = TrustFlags.websites_only()
        assert flags.server_auth
        assert not flags.code_signing

    def test_entry_trust_recorded(self, certs):
        store = RootStore("test")
        entry = store.add(certs[0], trust=TrustFlags.websites_only())
        assert not entry.trust.code_signing
