"""The Notary's fast path: cache keys, invalidation, disabled mode.

Covers the two correctness hazards of memoized validation counts:

* anchors sharing an RSA key but differing in subject must not share a
  cache line (``_leaves_under`` matches by subject first), and
* incremental invalidation after ``observe_leaf`` must leave the memo
  in the same state a cold rebuild would reach.
"""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.crypto.cache import default_verification_cache, fastpath_disabled
from repro.notary.database import NotaryDatabase
from repro.tlssim.traffic import ObservedLeaf
from repro.x509.builder import CertificateBuilder, make_root_certificate
from repro.x509.name import Name

ROOT_KEYPAIR = generate_keypair(DeterministicRandom("fastpath-root"))
TWIN_KEYPAIR = generate_keypair(DeterministicRandom("fastpath-twin"))
LEAF_KEYPAIR = generate_keypair(DeterministicRandom("fastpath-leaf"))
INTERMEDIATE_KEYPAIR = generate_keypair(DeterministicRandom("fastpath-inter"))


def _root(keypair, cn: str, serial: int = 1):
    return make_root_certificate(keypair, Name.build(CN=cn, O="Fastpath"), serial_number=serial)


def _signed(subject_cn: str, issuer, signer_keypair, subject_keypair, serial: int, ca: bool = False):
    builder = (
        CertificateBuilder()
        .subject(Name.build(CN=subject_cn, O="Fastpath"))
        .issuer(issuer.subject)
        .public_key(subject_keypair.public)
        .serial_number(serial)
    )
    if ca:
        builder.ca(True)
    return builder.sign(signer_keypair.private, issuer_public_key=signer_keypair.public)


def _leaf(certificate, *, expired: bool = False, sessions: int = 1, intermediates=()):
    return ObservedLeaf(
        certificate=certificate,
        issuer_name="Fastpath CA",
        expired=expired,
        session_count=sessions,
        intermediates=tuple(intermediates),
    )


class TestAnchorCacheKey:
    def test_same_key_different_subject_roots_count_separately(self):
        """Regression: two roots sharing one RSA key but naming
        different subjects validate different leaf sets; a cache keyed
        by (modulus, exponent) alone would hand the second root the
        first root's count."""
        root_a = _root(ROOT_KEYPAIR, "Shared Key Root A")
        root_b = _root(ROOT_KEYPAIR, "Shared Key Root B", serial=2)
        assert root_a.public_key == root_b.public_key
        assert root_a.subject != root_b.subject

        notary = NotaryDatabase()
        leaf = _signed("host.example", root_a, ROOT_KEYPAIR, LEAF_KEYPAIR, serial=10)
        notary.observe_leaf(_leaf(leaf))

        # Warm root A's cache line first, then query root B.
        assert notary.validated_by_root(root_a) == 1
        assert notary.validated_by_root(root_b) == 0
        # And in the opposite order on a fresh database.
        fresh = NotaryDatabase()
        fresh.observe_leaf(_leaf(leaf))
        assert fresh.validated_by_root(root_b) == 0
        assert fresh.validated_by_root(root_a) == 1

    def test_include_expired_variants_cached_separately(self):
        root = _root(ROOT_KEYPAIR, "Expiry Root")
        notary = NotaryDatabase()
        notary.observe_leaf(
            _leaf(_signed("live.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 11))
        )
        notary.observe_leaf(
            _leaf(
                _signed("old.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 12),
                expired=True,
            )
        )
        assert notary.validated_by_root(root) == 1
        assert notary.validated_by_root(root, include_expired=True) == 2
        assert notary.validated_by_root(root) == 1


class TestIncrementalInvalidation:
    def _counts(self, notary, roots):
        return [notary.validated_by_root(root) for root in roots]

    def test_observe_leaf_invalidates_only_affected_anchor(self):
        root_a = _root(ROOT_KEYPAIR, "Inval Root A")
        root_b = _root(TWIN_KEYPAIR, "Inval Root B")
        notary = NotaryDatabase()
        notary.observe_leaf(
            _leaf(_signed("a1.example", root_a, ROOT_KEYPAIR, LEAF_KEYPAIR, 20))
        )
        notary.observe_leaf(
            _leaf(_signed("b1.example", root_b, TWIN_KEYPAIR, LEAF_KEYPAIR, 21))
        )
        assert self._counts(notary, [root_a, root_b]) == [1, 1]
        sizes = notary.fastpath_index_sizes()
        assert sizes["count_memos"] == 2

        # A new leaf under A must drop A's memo but keep B's.
        notary.observe_leaf(
            _leaf(_signed("a2.example", root_a, ROOT_KEYPAIR, LEAF_KEYPAIR, 22))
        )
        sizes = notary.fastpath_index_sizes()
        assert sizes["count_memos"] == 1  # B's line survived
        assert self._counts(notary, [root_a, root_b]) == [2, 1]

    def test_incremental_matches_cold_rebuild(self):
        """Interleaving queries and ingestion must end at the same
        counts a from-scratch database computes."""
        root = _root(ROOT_KEYPAIR, "Rebuild Root")
        intermediate = _signed(
            "Rebuild Intermediate", root, ROOT_KEYPAIR, INTERMEDIATE_KEYPAIR, 30, ca=True
        )
        observations = [
            _leaf(_signed("r1.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 31)),
            _leaf(
                _signed(
                    "i1.example", intermediate, INTERMEDIATE_KEYPAIR, LEAF_KEYPAIR, 32
                ),
                intermediates=(intermediate,),
            ),
            _leaf(
                _signed("r2.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 33),
                expired=True,
            ),
        ]

        incremental = NotaryDatabase()
        for observation in observations:
            incremental.observe_leaf(observation)
            incremental.validated_by_root(root)  # warm between ingests

        cold = NotaryDatabase()
        for observation in observations:
            cold.observe_leaf(observation)

        for include_expired in (False, True):
            assert incremental.validated_by_root(
                root, include_expired=include_expired
            ) == cold.validated_by_root(root, include_expired=include_expired)
        assert incremental.validated_by_root(root, include_expired=True) == 3

    def test_new_intermediate_connects_previously_ingested_leaves(self):
        """A leaf arriving with a new intermediate must invalidate the
        intermediate's *issuer* anchors, not just the leaf's own."""
        root = _root(ROOT_KEYPAIR, "Connector Root")
        intermediate = _signed(
            "Connector Intermediate", root, ROOT_KEYPAIR, INTERMEDIATE_KEYPAIR, 40, ca=True
        )
        early = _leaf(
            _signed("early.example", intermediate, INTERMEDIATE_KEYPAIR, LEAF_KEYPAIR, 41)
        )
        late = _leaf(
            _signed("late.example", intermediate, INTERMEDIATE_KEYPAIR, LEAF_KEYPAIR, 42),
            intermediates=(intermediate,),
        )

        notary = NotaryDatabase()
        notary.observe_leaf(early)
        # Root knows nothing yet: the intermediate has not been seen.
        assert notary.validated_by_root(root) == 0
        notary.observe_leaf(late)
        # The new intermediate links BOTH leaves to the root.
        assert notary.validated_by_root(root) == 2


class TestDisabledFastPath:
    def test_disabled_mode_builds_no_memos_and_agrees(self):
        root = _root(ROOT_KEYPAIR, "Plain Root")
        notary = NotaryDatabase()
        notary.observe_leaf(
            _leaf(_signed("p1.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 50))
        )
        with fastpath_disabled():
            uncached = notary.validated_by_root(root)
            assert notary.fastpath_index_sizes() == {
                "anchor_leaf_sets": 0,
                "count_memos": 0,
            }
        assert notary.validated_by_root(root) == uncached

    def test_default_cache_accumulates_hits_on_repeat_queries(self):
        cache = default_verification_cache()
        root = _root(ROOT_KEYPAIR, "Hit Counter Root")
        notary = NotaryDatabase()
        notary.observe_leaf(
            _leaf(_signed("h1.example", root, ROOT_KEYPAIR, LEAF_KEYPAIR, 60))
        )
        notary.validated_by_root(root)
        notary.reset_fastpath()  # force re-walk; RSA results stay cached
        before = cache.stats()
        notary.validated_by_root(root)
        delta = cache.stats().since(before)
        assert delta.hits >= 1 and delta.misses == 0
