"""Tests for the per-table report renderers (on a tiny synthetic study)."""

import pytest

from repro.analysis import StudyConfig, run_study
from repro.analysis.report import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)


@pytest.fixture(scope="module")
def tiny_study():
    return run_study(StudyConfig(seed="render-tests", population_scale=0.03,
                                 notary_scale=0.2))


class TestRenderers:
    def test_table1(self, tiny_study):
        text = render_table1(tiny_study)
        assert "AOSP 4.4" in text and "150" in text

    def test_table2(self, tiny_study):
        text = render_table2(tiny_study)
        assert "Devices:" in text and "Manufacturers:" in text
        assert "SAMSUNG" in text

    def test_table3(self, tiny_study):
        text = render_table3(tiny_study)
        assert "Mozilla" in text and "iOS 7" in text

    def test_table4(self, tiny_study):
        text = render_table4(tiny_study)
        assert "Aggregated Android root certs" in text
        assert "%" in text

    def test_table5(self, tiny_study):
        text = render_table5(tiny_study)
        assert "devices" in text

    def test_table6(self, tiny_study):
        text = render_table6(tiny_study)
        assert "Reality Mine" in text
        assert "supl.google.com:7275" in text

    def test_table6_without_finding(self, tiny_study):
        import copy

        clone = copy.copy(tiny_study)
        clone.table6 = None
        assert "no interception observed" in render_table6(clone)

    def test_figure1(self, tiny_study):
        text = render_figure1(tiny_study)
        assert "extended stores" in text
        assert "largest extensions" in text

    def test_figure2(self, tiny_study):
        text = render_figure2(tiny_study)
        assert "presence classes" in text

    def test_figure3(self, tiny_study):
        text = render_figure3(tiny_study)
        assert "0-frac" in text
        assert "iOS7" in text


class TestHtmlReport:
    def test_full_document(self, tiny_study):
        from repro.analysis.html import render_html_report

        html = render_html_report(tiny_study)
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<svg") == 3
        assert "Table 4" in html
        assert "Paper claims" in html
        assert "claim-ok" in html

    def test_without_figures(self, tiny_study):
        from repro.analysis.html import render_html_report

        html = render_html_report(tiny_study, include_figures=False)
        assert "<svg" not in html
        assert "Figure 1 aggregates" in html

    def test_escaping(self, tiny_study):
        from repro.analysis.html import render_html_report

        html = render_html_report(tiny_study, include_figures=False)
        # Operator names contain '&'; must be escaped outside the SVGs.
        assert "AT&T(US)" not in html or "AT&amp;T(US)" in html
