"""Tests for the Certificate-Transparency-style log."""

import datetime

import pytest

from repro.analysis.classify import PresenceClassifier
from repro.crypto import DeterministicRandom, generate_keypair
from repro.crypto.pkcs1 import SignatureError
from repro.ctlog import (
    CertificateLog,
    LogMonitor,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)
from repro.x509 import CertificateBuilder, Name
from repro.x509.builder import make_root_certificate


@pytest.fixture(scope="module")
def certs(factory, catalog):
    profiles = catalog.core[:6]
    return [factory.root_certificate(p) for p in profiles]


class TestMerkleTree:
    def test_empty_tree_hash(self):
        import hashlib

        assert MerkleTree().root_hash() == hashlib.sha256(b"").digest()

    def test_known_single_leaf(self):
        import hashlib

        tree = MerkleTree([b"hello"])
        assert tree.root_hash() == hashlib.sha256(b"\x00hello").digest()

    def test_root_changes_on_append(self):
        tree = MerkleTree([b"a", b"b"])
        before = tree.root_hash()
        tree.append(b"c")
        assert tree.root_hash() != before
        # ...but the old head is still computable (append-only history).
        assert tree.root_hash(2) == before

    def test_inclusion_rejects_wrong_leaf(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
        proof = tree.inclusion_proof(2)
        root = tree.root_hash()
        assert verify_inclusion(b"c", 2, 5, proof, root)
        assert not verify_inclusion(b"X", 2, 5, proof, root)
        assert not verify_inclusion(b"c", 3, 5, proof, root)

    def test_consistency_rejects_rewrite(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        old_root = tree.root_hash()
        tree.append(b"d")
        proof = tree.consistency_proof(3, 4)
        assert verify_consistency(3, 4, old_root, tree.root_hash(), proof)
        # A log that rewrote history cannot produce a valid proof.
        rewritten = MerkleTree([b"a", b"X", b"c", b"d"])
        bad_proof = rewritten.consistency_proof(3, 4)
        assert not verify_consistency(
            3, 4, old_root, rewritten.root_hash(), bad_proof
        )

    def test_invalid_requests(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(ValueError):
            tree.inclusion_proof(1)
        with pytest.raises(ValueError):
            tree.consistency_proof(0, 1)
        with pytest.raises(ValueError):
            tree.root_hash(5)


class TestCertificateLog:
    def test_submit_and_prove(self, certs):
        log = CertificateLog()
        for certificate in certs:
            log.submit(certificate)
        sth = log.signed_tree_head()
        sth.verify(log.public_key)
        assert sth.tree_size == len(certs)
        for certificate in certs:
            index, proof = log.inclusion_proof(certificate, sth.tree_size)
            assert verify_inclusion(
                certificate.encoded, index, sth.tree_size, proof, sth.root_hash
            )

    def test_submit_idempotent(self, certs):
        log = CertificateLog()
        first = log.submit(certs[0])
        second = log.submit(certs[0])
        assert first.index == second.index
        assert len(log) == 1

    def test_sth_signature_binds_content(self, certs):
        log = CertificateLog()
        log.submit(certs[0])
        sth = log.signed_tree_head()
        forged = type(sth)(
            tree_size=sth.tree_size + 1,
            root_hash=sth.root_hash,
            timestamp=sth.timestamp,
            signature=sth.signature,
        )
        with pytest.raises(SignatureError):
            forged.verify(log.public_key)

    def test_unlogged_certificate(self, certs):
        log = CertificateLog()
        with pytest.raises(KeyError):
            log.inclusion_proof(certs[0], 0)
        assert not log.contains(certs[0])

    def test_consistency_across_growth(self, certs):
        log = CertificateLog()
        log.submit(certs[0])
        log.submit(certs[1])
        old = log.signed_tree_head()
        for certificate in certs[2:]:
            log.submit(certificate)
        new = log.signed_tree_head()
        proof = log.consistency_proof(old.tree_size, new.tree_size)
        assert verify_consistency(
            old.tree_size, new.tree_size, old.root_hash, new.root_hash, proof
        )


class TestMonitor:
    @pytest.fixture
    def classifier(self, platform_stores, notary):
        return PresenceClassifier(platform_stores.mozilla, platform_stores.ios7, notary)

    def test_clean_log_no_alerts(self, certs, classifier):
        log = CertificateLog()
        monitor = LogMonitor(log, classifier)
        for certificate in certs[:3]:
            log.submit(certificate)
        alerts = monitor.poll()
        assert alerts == []

    def test_crazy_house_ca_detected(self, certs, classifier, factory, catalog):
        """The §6 threat caught by transparency: a logged rogue CA."""
        log = CertificateLog()
        monitor = LogMonitor(log, classifier)
        log.submit(certs[0])
        monitor.poll()
        log.submit(factory.root_certificate(catalog.by_name("CRAZY HOUSE")))
        alerts = monitor.poll()
        assert any(a.kind == "unvetted_authority" for a in alerts)

    def test_watched_domain_misissuance(self, classifier, factory):
        log = CertificateLog()
        monitor = LogMonitor(log, classifier)
        monitor.watch("www.bank.example", "Entrust Root CA")
        rogue_kp = generate_keypair(DeterministicRandom("ct-rogue"))
        rogue_ca = make_root_certificate(rogue_kp, Name.build(CN="Rogue CA"))
        misissued = (
            CertificateBuilder()
            .subject(Name.build(CN="www.bank.example"))
            .issuer(rogue_ca.subject)
            .public_key(rogue_kp.public)
            .serial_number(99)
            .tls_server("www.bank.example")
            .sign(rogue_kp.private, issuer_public_key=rogue_kp.public)
        )
        log.submit(misissued)
        alerts = monitor.poll()
        assert any(a.kind == "unexpected_issuer" for a in alerts)
        assert "Rogue CA" in alerts[0].message or any(
            "Rogue CA" in a.message for a in alerts
        )

    def test_incremental_polling(self, certs, classifier):
        log = CertificateLog()
        monitor = LogMonitor(log, classifier)
        log.submit(certs[0])
        monitor.poll()
        log.submit(certs[1])
        log.submit(certs[2])
        monitor.poll()
        assert monitor._seen == 3
        # Tree heads were verified consistent across both polls.
        assert not [a for a in monitor.alerts if a.kind == "log_misbehavior"]
