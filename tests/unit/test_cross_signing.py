"""Tests for cross-signed path discovery in the chain verifier."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.x509 import CertificateBuilder, ChainVerifier, Name
from repro.x509.builder import make_root_certificate
from repro.x509.chain import build_all_chains


@pytest.fixture(scope="module")
def cross_signed_pki():
    """An intermediate cross-signed by two roots (the GlobalSign/
    Let's-Encrypt deployment shape): same intermediate key and subject,
    two parent certificates with different issuers."""
    old_root_kp = generate_keypair(DeterministicRandom("xs-old-root"))
    new_root_kp = generate_keypair(DeterministicRandom("xs-new-root"))
    old_root = make_root_certificate(old_root_kp, Name.build(CN="Legacy Root", O="X"))
    new_root = make_root_certificate(new_root_kp, Name.build(CN="Modern Root", O="X"))

    inter_kp = generate_keypair(DeterministicRandom("xs-inter"))
    inter_subject = Name.build(CN="Cross Intermediate", O="X")

    def cross_cert(root_cert, root_kp, serial):
        return (
            CertificateBuilder()
            .subject(inter_subject)
            .issuer(root_cert.subject)
            .public_key(inter_kp.public)
            .serial_number(serial)
            .ca(True)
            .sign(root_kp.private, issuer_public_key=root_kp.public)
        )

    inter_via_old = cross_cert(old_root, old_root_kp, 10)
    inter_via_new = cross_cert(new_root, new_root_kp, 11)

    leaf_kp = generate_keypair(DeterministicRandom("xs-leaf"))
    leaf = (
        CertificateBuilder()
        .subject(Name.build(CN="cross.example.com"))
        .issuer(inter_subject)
        .public_key(leaf_kp.public)
        .serial_number(12)
        .tls_server("cross.example.com")
        .sign(inter_kp.private, issuer_public_key=inter_kp.public)
    )
    return {
        "old_root": old_root,
        "new_root": new_root,
        "inter_via_old": inter_via_old,
        "inter_via_new": inter_via_new,
        "leaf": leaf,
    }


class TestBuildAllChains:
    def test_both_paths_found(self, cross_signed_pki):
        pki = cross_signed_pki
        paths = build_all_chains(
            pki["leaf"], [pki["inter_via_old"], pki["inter_via_new"]]
        )
        assert len(paths) == 2
        tops = {path[-1].serial_number for path in paths}
        assert tops == {10, 11}

    def test_limit_respected(self, cross_signed_pki):
        pki = cross_signed_pki
        paths = build_all_chains(
            pki["leaf"],
            [pki["inter_via_old"], pki["inter_via_new"]],
            limit=1,
        )
        assert len(paths) == 1

    def test_no_candidates(self, cross_signed_pki):
        assert build_all_chains(cross_signed_pki["leaf"], []) == [
            [cross_signed_pki["leaf"]]
        ]


class TestCrossSignedValidation:
    def test_validates_with_either_root(self, cross_signed_pki):
        """Whichever root the client trusts, the server's dual-cert
        bundle must validate."""
        pki = cross_signed_pki
        presented = [pki["leaf"], pki["inter_via_old"], pki["inter_via_new"]]
        for trusted_root, expected_serial in (
            (pki["old_root"], 10),
            (pki["new_root"], 11),
        ):
            verifier = ChainVerifier([trusted_root])
            result = verifier.validate(presented, "cross.example.com")
            assert result.trusted, trusted_root.subject
            assert result.anchor == trusted_root

    def test_presentation_order_irrelevant(self, cross_signed_pki):
        pki = cross_signed_pki
        verifier = ChainVerifier([pki["new_root"]])
        for presented in (
            [pki["leaf"], pki["inter_via_old"], pki["inter_via_new"]],
            [pki["leaf"], pki["inter_via_new"], pki["inter_via_old"]],
        ):
            assert verifier.validate(presented, "cross.example.com").trusted

    def test_untrusted_both_roots_fails(self, cross_signed_pki):
        pki = cross_signed_pki
        stranger = make_root_certificate(
            generate_keypair(DeterministicRandom("xs-stranger")),
            Name.build(CN="Stranger Root"),
        )
        verifier = ChainVerifier([stranger])
        result = verifier.validate(
            [pki["leaf"], pki["inter_via_old"], pki["inter_via_new"]]
        )
        assert not result.trusted
