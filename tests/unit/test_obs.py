"""The unified observability layer: metrics, spans, schema, scoping."""

import json

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_BUCKETS,
    MAX_EVENTS_PER_SPAN,
    Histogram,
    MetricsRegistry,
    SchemaError,
    TelemetrySnapshot,
    Tracer,
    validate_metrics,
    validate_trace,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.to_dict()["counters"] == {"x": 5}

    def test_gauge_is_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7.5)
        assert registry.to_dict()["gauges"] == {"g": 7.5}

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("a") is registry.gauge("a")
        assert registry.histogram("a") is registry.histogram("a")

    def test_export_sorts_names(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name).inc()
        assert list(registry.to_dict()["counters"]) == ["alpha", "mid", "zeta"]

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        registry.reset()
        exported = registry.to_dict()
        assert exported["counters"] == {}
        assert exported["gauges"] == {}
        assert exported["histograms"] == {}


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram(boundaries=(0.1, 1.0))
        histogram.observe(0.05)   # <= 0.1
        histogram.observe(0.1)    # boundary lands in its own bucket
        histogram.observe(0.5)    # <= 1.0
        histogram.observe(5.0)    # overflow
        assert histogram.counts == [2, 1, 1]

    def test_summary_statistics(self):
        histogram = Histogram()
        for value in (0.2, 0.4, 0.6):
            histogram.observe(value)
        exported = histogram.to_dict()
        assert exported["count"] == 3
        assert exported["sum"] == pytest.approx(1.2)
        assert exported["min"] == pytest.approx(0.2)
        assert exported["max"] == pytest.approx(0.6)

    def test_empty_histogram_exports_null_extremes(self):
        exported = Histogram().to_dict()
        assert exported["count"] == 0
        assert exported["min"] is None and exported["max"] is None
        assert len(exported["counts"]) == len(DEFAULT_BUCKETS) + 1

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 0.1))


class TestTracer:
    def test_nesting_follows_with_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        exported = tracer.to_dict()
        assert [span["name"] for span in exported["spans"]] == ["outer"]
        children = exported["spans"][0]["children"]
        assert [span["name"] for span in children] == ["inner", "sibling"]

    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", workers=4) as span:
            span.set("items", 10)
        exported = tracer.to_dict()["spans"][0]
        assert exported["duration_s"] >= 0
        assert exported["attributes"] == {"items": 10, "workers": 4}

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("hit", key="value")
        inner = tracer.to_dict()["spans"][0]["children"][0]
        assert inner["events"] == [
            {"name": "hit", "attributes": {"key": "value"}}
        ]

    def test_events_outside_spans_are_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.to_dict()["spans"] == []

    def test_event_cap_counts_drops(self):
        tracer = Tracer()
        with tracer.span("busy"):
            for index in range(MAX_EVENTS_PER_SPAN + 10):
                tracer.event("e", index=index)
        exported = tracer.to_dict()["spans"][0]
        assert len(exported["events"]) == MAX_EVENTS_PER_SPAN
        assert exported["dropped_events"] == 10

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.current() is None
        assert tracer.to_dict()["spans"][0]["name"] == "doomed"


class TestModuleHelpers:
    def test_capture_scopes_a_fresh_window(self):
        obs.counter_inc("outside")
        with obs.capture() as (registry, tracer):
            obs.counter_inc("inside")
            with obs.span("s"):
                obs.event("e")
        exported = registry.to_dict()
        assert exported["counters"] == {"inside": 1}
        assert "outside" not in exported["counters"]
        assert tracer.to_dict()["spans"][0]["name"] == "s"
        # the window closed: new increments no longer land in it
        obs.counter_inc("inside")
        assert registry.to_dict()["counters"] == {"inside": 1}

    def test_capture_nests(self):
        with obs.capture() as (outer, _):
            obs.counter_inc("outer-count")
            with obs.capture() as (inner, _):
                obs.counter_inc("inner-count")
            obs.counter_inc("outer-count")
        assert outer.to_dict()["counters"] == {"outer-count": 2}
        assert inner.to_dict()["counters"] == {"inner-count": 1}

    def test_disabled_makes_helpers_noop(self):
        with obs.capture() as (registry, tracer):
            with obs.disabled():
                assert not obs.enabled()
                obs.counter_inc("never")
                obs.gauge_set("never", 1)
                obs.observe("never", 0.1)
                with obs.span("never") as span:
                    span.set("still", "noop")
                    obs.event("never")
            assert obs.enabled()
        exported = registry.to_dict()
        assert exported["counters"] == {}
        assert exported["gauges"] == {}
        assert exported["histograms"] == {}
        assert tracer.to_dict()["spans"] == []

    def test_snapshot_writes_validated_json(self, tmp_path):
        with obs.capture() as (registry, tracer):
            obs.counter_inc("c")
            obs.observe("h", 0.3)
            with obs.span("root", workers=2):
                obs.event("tick")
        snapshot = TelemetrySnapshot(
            metrics=registry.to_dict(), trace=tracer.to_dict()
        )
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        snapshot.write_metrics(metrics_path)
        snapshot.write_trace(trace_path)
        validate_metrics(json.loads(metrics_path.read_text()))
        validate_trace(json.loads(trace_path.read_text()))


class TestSchemaValidation:
    def _valid_pair(self):
        with obs.capture() as (registry, tracer):
            obs.counter_inc("c")
            obs.observe("h", 0.3)
            with obs.span("root"):
                pass
        return registry.to_dict(), tracer.to_dict()

    def test_accepts_real_exports(self):
        metrics, trace = self._valid_pair()
        validate_metrics(metrics)
        validate_trace(trace)

    def test_rejects_missing_span_key(self):
        _, trace = self._valid_pair()
        del trace["spans"][0]["duration_s"]
        with pytest.raises(SchemaError):
            validate_trace(trace)

    def test_rejects_unknown_span_key(self):
        _, trace = self._valid_pair()
        trace["spans"][0]["surprise"] = 1
        with pytest.raises(SchemaError):
            validate_trace(trace)

    def test_rejects_histogram_count_mismatch(self):
        metrics, _ = self._valid_pair()
        metrics["histograms"]["h"]["count"] = 99
        with pytest.raises(SchemaError):
            validate_metrics(metrics)

    def test_rejects_wrong_schema_revision(self):
        metrics, trace = self._valid_pair()
        metrics["schema"] = 99
        trace["schema"] = 99
        with pytest.raises(SchemaError):
            validate_metrics(metrics)
        with pytest.raises(SchemaError):
            validate_trace(trace)
