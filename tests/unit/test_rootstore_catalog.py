"""Unit tests for the CA catalog calibration (the paper's structure)."""

from collections import Counter

import pytest

from repro.rootstore.catalog import (
    ANDROID_VERSIONS,
    AOSP_SIZES,
    IOS7_SIZE,
    MOZILLA_SIZE,
    CaKind,
    StorePresence,
    _zipf_allocation,
    default_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


class TestStoreSizes:
    """Table 1: AOSP 139/140/146/150, Mozilla 153, iOS7 227."""

    @pytest.mark.parametrize("version", ANDROID_VERSIONS)
    def test_aosp_sizes(self, catalog, version):
        assert len(catalog.aosp_profiles(version)) == AOSP_SIZES[version]

    def test_mozilla_size(self, catalog):
        assert len(catalog.mozilla_profiles()) == MOZILLA_SIZE == 153

    def test_ios7_size(self, catalog):
        assert len(catalog.ios7_profiles()) == IOS7_SIZE == 227

    def test_aosp_versions_grow_monotonically(self, catalog):
        sets = [
            {p.name for p in catalog.aosp_profiles(v)} for v in ANDROID_VERSIONS
        ]
        for older, newer in zip(sets, sets[1:]):
            assert older <= newer


class TestOverlapStructure:
    def test_core_is_130(self, catalog):
        """Table 4's AOSP∩Mozilla equivalence category."""
        assert len(catalog.core) == 130

    def test_117_identical_13_reissued(self, catalog):
        """§2: 117 of AOSP 4.4's certs exist byte-identically in Mozilla."""
        reissued = [p for p in catalog.core if p.reissued_in_mozilla]
        assert len(reissued) == 13
        assert len(catalog.core) - len(reissued) == 117

    def test_expired_firmaprofesional_root(self, catalog):
        """§2: one AOSP root expired in Oct 2013."""
        expired = [p for p in catalog.aosp_profiles("4.4") if p.expired_root]
        assert len(expired) == 1
        assert "Firmaprofesional" in expired[0].name


class TestExtras:
    def test_101_extras_85_outside_mozilla(self, catalog):
        """Table 4: 85 non-AOSP/non-Mozilla + 16 non-AOSP in Mozilla."""
        extras = catalog.extra_profiles()
        assert len(extras) == 101
        assert sum(1 for p in extras if not p.in_mozilla) == 85
        assert sum(1 for p in extras if p.in_mozilla) == 16

    def test_presence_class_distribution(self, catalog):
        """Figure 2's class mix (shape: unseen > android-only > iOS7-only
        > both)."""
        counts = Counter(p.presence for p in catalog.extra_profiles())
        assert counts[StorePresence.NOT_RECORDED] == 38
        assert counts[StorePresence.ANDROID_ONLY] == 33
        assert counts[StorePresence.IOS7_ONLY] == 14
        assert counts[StorePresence.MOZILLA_AND_IOS7] == 7
        assert (
            counts[StorePresence.NOT_RECORDED]
            > counts[StorePresence.ANDROID_ONLY]
            > counts[StorePresence.IOS7_ONLY]
            > counts[StorePresence.MOZILLA_AND_IOS7]
        )

    def test_validate_nothing_fractions(self, catalog):
        """Table 4: 72% of non-Mozilla extras and 38% of Mozilla-member
        extras validate no current Notary certificate."""
        non_mozilla = [p for p in catalog.extra_profiles() if not p.in_mozilla]
        mozilla = [p for p in catalog.extra_profiles() if p.in_mozilla]
        frac_non = sum(1 for p in non_mozilla if p.current_leaves == 0) / len(non_mozilla)
        frac_moz = sum(1 for p in mozilla if p.current_leaves == 0) / len(mozilla)
        assert abs(frac_non - 0.72) < 0.02
        assert abs(frac_moz - 0.38) < 0.02

    def test_special_purpose_roots_not_recorded(self, catalog):
        """§5.1: FOTA/SUPL/UTI roots never show up in Notary traffic."""
        for name in (
            "Motorola FOTA Root CA",
            "Motorola SUPL Server Root CA",
            "GeoTrust CA for UTI",
        ):
            profile = catalog.by_name(name)
            assert profile.presence is StorePresence.NOT_RECORDED
            assert profile.purpose != "tls"

    def test_dod_is_ios7_only(self, catalog):
        """§5.1 fn4: DoD root is in iOS7 but not Mozilla."""
        dod = catalog.by_name("DoD CLASS 3 Root CA")
        assert dod.in_ios7 and not dod.in_mozilla
        assert dod.kind is CaKind.GOVERNMENT

    def test_every_extra_is_deployed(self, catalog):
        deployed = {d.cert_name for d in catalog.deployments}
        for profile in catalog.extra_profiles():
            assert profile.name in deployed


class TestDeployments:
    def test_certisign_is_motorola_verizon_41(self, catalog):
        """§5.1: CertiSign exclusively on Motorola 4.1 Verizon devices."""
        for deployment in catalog.deployments_for_cert("Certisign AC1S"):
            assert deployment.manufacturer == "MOTOROLA"
            assert deployment.operator == "VERIZON(US)"
            assert deployment.versions == ("4.1",)

    def test_microsoft_cert_is_att(self, catalog):
        """§5.1: Microsoft Secure Server appears via AT&T Motorola."""
        deployments = catalog.deployments_for_cert("Microsoft Secure Server Authority")
        assert any(d.operator == "AT&T(US)" for d in deployments)

    def test_shared_vendor_certs(self, catalog):
        """§5.1: HTC and Samsung both ship AddTrust/DT/Sonera/DoD."""
        for name in (
            "AddTrust Class 1 CA Root",
            "Deutsche Telekom Root CA 1",
            "Sonera Class1 CA",
            "DoD CLASS 3 Root CA",
        ):
            manufacturers = {
                d.manufacturer for d in catalog.deployments_for_cert(name)
            }
            assert {"HTC", "SAMSUNG"} <= manufacturers

    def test_uti_cert_versions(self, catalog):
        """§5.1: GeoTrust UTI on Samsung 4.2 and 4.3 devices."""
        deployments = catalog.deployments_for_cert("GeoTrust CA for UTI")
        assert deployments[0].manufacturer == "SAMSUNG"
        assert set(deployments[0].versions) == {"4.2", "4.3"}


class TestUniverseTotals:
    def test_314_unique_device_certs(self, catalog):
        """§4.1: 314 unique root certificates across all sessions."""
        total = (
            len(catalog.core)
            + len(catalog.aosp_only)
            + len(catalog.extras)
            + len(catalog.rooted_only)
        )
        assert total == 314

    def test_rooted_only_certs(self, catalog):
        """Table 5's CAs plus the self-signed singleton population."""
        names = {p.name for p in catalog.rooted_only}
        assert "CRAZY HOUSE" in names
        assert "MIND OVERFLOW" in names
        assert len(catalog.rooted_only) == 63

    def test_no_duplicate_names(self, catalog):
        names = [p.name for p in catalog.all_profiles()]
        assert len(names) == len(set(names))

    def test_validate_calibration_passes(self, catalog):
        catalog.validate_calibration()


class TestZipfAllocation:
    def test_total_preserved(self):
        counts = _zipf_allocation(14_700, 110, 1.15)
        assert sum(counts) == 14_700

    def test_monotone_nonincreasing(self):
        counts = _zipf_allocation(10_000, 50, 1.2)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_skew(self):
        counts = _zipf_allocation(10_000, 100, 1.2)
        # Top 10 roots carry well over a third of the traffic.
        assert sum(counts[:10]) > 10_000 / 3

    def test_degenerate_single(self):
        assert _zipf_allocation(42, 1, 1.0) == [42]
