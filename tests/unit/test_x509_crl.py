"""Unit tests for CRLs and revocation checking."""

import datetime

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.crypto.pkcs1 import SignatureError
from repro.x509 import CertificateBuilder, ChainVerifier, Name
from repro.x509.builder import make_root_certificate
from repro.x509.chain import ValidationFailure
from repro.x509.crl import (
    CertificateRevocationList,
    CrlBuilder,
    CrlError,
    RevocationChecker,
    RevocationReason,
)

NOW = datetime.datetime(2014, 4, 1)


@pytest.fixture(scope="module")
def ca():
    keypair = generate_keypair(DeterministicRandom("crl-ca"))
    certificate = make_root_certificate(keypair, Name.build(CN="CRL Test CA", O="T"))
    return keypair, certificate


@pytest.fixture(scope="module")
def leaf(ca):
    ca_keypair, ca_cert = ca
    keypair = generate_keypair(DeterministicRandom("crl-leaf"))
    certificate = (
        CertificateBuilder()
        .subject(Name.build(CN="revocable.example.com"))
        .issuer(ca_cert.subject)
        .public_key(keypair.public)
        .serial_number(4242)
        .tls_server("revocable.example.com")
        .sign(ca_keypair.private, issuer_public_key=ca_keypair.public)
    )
    return certificate


@pytest.fixture(scope="module")
def crl(ca, leaf):
    ca_keypair, ca_cert = ca
    return (
        CrlBuilder(ca_cert.subject)
        .revoke(leaf, at=NOW - datetime.timedelta(days=10),
                reason=RevocationReason.KEY_COMPROMISE)
        .revoke(999999, at=NOW - datetime.timedelta(days=5))
        .sign(
            ca_keypair.private,
            this_update=NOW - datetime.timedelta(days=1),
            next_update=NOW + datetime.timedelta(days=30),
        )
    )


class TestCrlBuildParse:
    def test_roundtrip(self, crl, ca):
        parsed = CertificateRevocationList.from_der(crl.encoded)
        assert parsed.issuer == ca[1].subject
        assert len(parsed) == 2
        assert {entry.serial_number for entry in parsed.entries} == {4242, 999999}

    def test_is_revoked(self, crl, leaf):
        assert crl.is_revoked(leaf)

    def test_wrong_issuer_not_revoked(self, crl):
        other_kp = generate_keypair(DeterministicRandom("other-crl-ca"))
        other_ca = make_root_certificate(other_kp, Name.build(CN="Other CA"))
        other_leaf = (
            CertificateBuilder()
            .subject(Name.build(CN="x.example"))
            .issuer(other_ca.subject)
            .public_key(other_kp.public)
            .serial_number(4242)  # same serial, different issuer
            .sign(other_kp.private, issuer_public_key=other_kp.public)
        )
        assert not crl.is_revoked(other_leaf)

    def test_signature_verifies(self, crl, ca):
        crl.verify_signature(ca[1].public_key)

    def test_tampered_signature_fails(self, crl, ca):
        tampered = bytearray(crl.encoded)
        tampered[-3] ^= 0xFF
        parsed = CertificateRevocationList.from_der(bytes(tampered))
        with pytest.raises(SignatureError):
            parsed.verify_signature(ca[1].public_key)

    def test_staleness(self, crl):
        assert not crl.is_stale(NOW)
        assert crl.is_stale(NOW + datetime.timedelta(days=60))

    def test_empty_crl(self, ca):
        ca_keypair, ca_cert = ca
        empty = CrlBuilder(ca_cert.subject).sign(
            ca_keypair.private,
            this_update=NOW,
            next_update=NOW + datetime.timedelta(days=30),
        )
        assert len(empty) == 0
        empty.verify_signature(ca_cert.public_key)

    def test_inverted_window_rejected(self, ca):
        with pytest.raises(ValueError, match="nextUpdate"):
            CrlBuilder(ca[1].subject).sign(
                ca[0].private, this_update=NOW, next_update=NOW
            )

    def test_garbage_rejected(self):
        with pytest.raises(CrlError):
            CertificateRevocationList.from_der(b"\x30\x03\x02\x01\x00")


class TestRevocationChecker:
    def test_status_lifecycle(self, ca, crl, leaf):
        checker = RevocationChecker(at=NOW)
        assert checker.status(leaf) == "unknown"
        checker.add_crl(crl, ca[1])
        assert checker.status(leaf) == "revoked"
        assert checker.is_revoked(leaf)

    def test_good_certificate(self, ca, crl):
        ca_keypair, ca_cert = ca
        keypair = generate_keypair(DeterministicRandom("good-leaf"))
        good = (
            CertificateBuilder()
            .subject(Name.build(CN="good.example.com"))
            .issuer(ca_cert.subject)
            .public_key(keypair.public)
            .serial_number(1)
            .sign(ca_keypair.private, issuer_public_key=ca_keypair.public)
        )
        checker = RevocationChecker(at=NOW)
        checker.add_crl(crl, ca_cert)
        assert checker.status(good) == "good"

    def test_stale_crl_gives_unknown(self, ca, crl, leaf):
        checker = RevocationChecker(at=NOW + datetime.timedelta(days=90))
        checker.add_crl(crl, ca[1])
        assert checker.status(leaf) == "unknown"

    def test_forged_crl_rejected(self, ca, leaf):
        mallory = generate_keypair(DeterministicRandom("mallory-crl"))
        forged = CrlBuilder(ca[1].subject).revoke(leaf, at=NOW).sign(
            mallory.private,
            this_update=NOW,
            next_update=NOW + datetime.timedelta(days=30),
        )
        checker = RevocationChecker(at=NOW)
        with pytest.raises(SignatureError):
            checker.add_crl(forged, ca[1])

    def test_issuer_mismatch_rejected(self, ca, crl):
        other_kp = generate_keypair(DeterministicRandom("mismatch-ca"))
        other = make_root_certificate(other_kp, Name.build(CN="Mismatch CA"))
        checker = RevocationChecker(at=NOW)
        with pytest.raises(CrlError, match="does not match"):
            checker.add_crl(crl, other)


class TestVerifierIntegration:
    def test_revoked_chain_rejected(self, ca, crl, leaf):
        checker = RevocationChecker(at=NOW)
        checker.add_crl(crl, ca[1])
        verifier = ChainVerifier([ca[1]], at=NOW, revocation=checker)
        result = verifier.validate([leaf])
        assert not result.trusted
        assert result.failure is ValidationFailure.REVOKED

    def test_android_default_accepts_revoked(self, ca, leaf):
        """Without a revocation source (Android's default), the revoked
        leaf still validates -- the gap §8 calls out."""
        verifier = ChainVerifier([ca[1]], at=NOW)
        assert verifier.validate([leaf]).trusted
