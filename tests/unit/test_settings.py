"""Tests for the settings surface and user-awareness signals."""

import pytest

from repro.android import DeviceSpec, FirmwareBuilder, FreedomLikeApp
from repro.android.settings import EventKind, SecuritySettings


@pytest.fixture
def device(factory, catalog):
    firmware = FirmwareBuilder(factory, catalog)
    return firmware.provision(
        DeviceSpec("SAMSUNG", "Galaxy SIV", "4.4", "T-MOBILE(US)"),
        branded=False,
        rooted=True,
    )


@pytest.fixture
def user_cert(factory, catalog):
    return factory.root_certificate(catalog.by_name("Self-Signed VPN Root 4"))


class TestCredentialTabs:
    def test_fresh_device_tabs(self, device):
        settings = SecuritySettings(device)
        assert len(settings.system_credentials()) == 150
        assert settings.user_credentials() == []

    def test_user_install_lands_in_user_tab(self, device, user_cert):
        settings = SecuritySettings(device)
        settings.install_certificate(user_cert, "My VPN")
        assert user_cert in settings.user_credentials()
        assert user_cert not in settings.system_credentials()


class TestSignals:
    def test_install_prompts_and_warns(self, device, user_cert):
        settings = SecuritySettings(device)
        settings.install_certificate(user_cert, "My VPN")
        kinds = [event.kind for event in settings.events]
        assert kinds == [EventKind.INSTALL_PROMPT, EventKind.MONITORING_WARNING]
        assert settings.monitoring_warning_active
        assert 'My VPN' in settings.events[0].message

    def test_monitoring_warning_raised_once(self, device, factory, catalog):
        settings = SecuritySettings(device)
        settings.install_certificate(
            factory.root_certificate(catalog.by_name("Self-Signed VPN Root 5"))
        )
        settings.install_certificate(
            factory.root_certificate(catalog.by_name("Self-Signed VPN Root 6"))
        )
        warnings = [
            e for e in settings.events if e.kind is EventKind.MONITORING_WARNING
        ]
        assert len(warnings) == 1

    def test_disable_confirms(self, device):
        settings = SecuritySettings(device)
        target = settings.system_credentials()[0]
        assert settings.disable_system_certificate(target)
        assert settings.events[0].kind is EventKind.DISABLE_CONFIRMATION
        assert target not in set(device.store.certificates())


class TestSilentChanges:
    def test_app_injection_is_silent_until_reconciled(
        self, device, factory, catalog
    ):
        """§6: the Freedom app changes the store with zero user signal."""
        settings = SecuritySettings(device)
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.install_app(FreedomLikeApp(ca_certificate=crazy))
        # Nothing was shown to the user at injection time.
        assert settings.events == []
        silent = settings.reconcile()
        assert len(silent) == 1
        assert silent[0].kind is EventKind.SILENT_CHANGE
        assert "Freedom" in silent[0].message
        assert silent[0].certificate == crazy

    def test_user_installs_are_not_silent(self, device, user_cert):
        settings = SecuritySettings(device)
        settings.install_certificate(user_cert)
        assert settings.reconcile() == []

    def test_reconcile_idempotent(self, device, factory, catalog):
        settings = SecuritySettings(device)
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.install_app(FreedomLikeApp(ca_certificate=crazy))
        assert len(settings.reconcile()) == 1
        assert settings.reconcile() == []
