"""Tests for the broken app-TLS-stack models."""

import datetime

import pytest

from repro.android.appsec import (
    AppTlsStack,
    ValidationProfile,
    exposure_summary,
    run_attack_matrix,
)
from repro.crypto import DeterministicRandom, generate_keypair
from repro.tlssim import TlsServer
from repro.tlssim.pinning import PinStore
from repro.tlssim.traffic import ServerIdentity
from repro.x509 import CertificateBuilder, Name

HOST = "victim.example"


@pytest.fixture(scope="module")
def device_store(platform_stores):
    return platform_stores.aosp["4.4"].copy("appsec-tests", read_only=False)


@pytest.fixture(scope="module")
def legit_server(traffic):
    identity = traffic.server_identity(HOST, "Entrust Root CA")
    return TlsServer(HOST, 443, identity)


@pytest.fixture(scope="module")
def self_signed_server():
    keypair = generate_keypair(DeterministicRandom("appsec-test-ss"))
    certificate = (
        CertificateBuilder()
        .subject(Name.build(CN=HOST))
        .public_key(keypair.public)
        .tls_server(HOST)
        .self_sign(keypair.private)
    )
    return TlsServer(HOST, 443, ServerIdentity(chain=(certificate,), keypair=keypair))


@pytest.fixture(scope="module")
def wrong_host_server(traffic):
    identity = traffic.server_identity("unrelated.example", "Entrust Root CA")
    return TlsServer(HOST, 443, identity)


class TestProfiles:
    def test_correct_accepts_legit(self, device_store, legit_server):
        stack = AppTlsStack(ValidationProfile.CORRECT, device_store)
        assert stack.connect(legit_server).trusted

    def test_correct_rejects_self_signed(self, device_store, self_signed_server):
        stack = AppTlsStack(ValidationProfile.CORRECT, device_store)
        assert not stack.connect(self_signed_server).trusted

    def test_correct_rejects_wrong_host(self, device_store, wrong_host_server):
        stack = AppTlsStack(ValidationProfile.CORRECT, device_store)
        assert not stack.connect(wrong_host_server).trusted

    def test_accept_all_accepts_everything(
        self, device_store, self_signed_server, wrong_host_server
    ):
        stack = AppTlsStack(ValidationProfile.ACCEPT_ALL, device_store)
        assert stack.connect(self_signed_server).trusted
        assert stack.connect(wrong_host_server).trusted

    def test_no_hostname_accepts_wrong_host_only(
        self, device_store, self_signed_server, wrong_host_server
    ):
        stack = AppTlsStack(ValidationProfile.NO_HOSTNAME, device_store)
        assert stack.connect(wrong_host_server).trusted
        assert not stack.connect(self_signed_server).trusted

    def test_accept_self_signed(self, device_store, self_signed_server, legit_server):
        stack = AppTlsStack(ValidationProfile.ACCEPT_SELF_SIGNED, device_store)
        assert stack.connect(self_signed_server).trusted
        assert stack.connect(legit_server).trusted  # legit still passes

    def test_accept_expired(self, device_store, factory, catalog):
        ca_profile = catalog.by_name("Entrust Root CA")
        ca_keypair = factory.keypair_for("Entrust Root CA")
        keypair = generate_keypair(DeterministicRandom("appsec-test-expired"))
        expired = (
            CertificateBuilder()
            .subject(Name.build(CN=HOST))
            .issuer(factory.subject_for(ca_profile))
            .public_key(keypair.public)
            .serial_number(5)
            .validity(datetime.datetime(2010, 1, 1), datetime.datetime(2012, 1, 1))
            .tls_server(HOST)
            .sign(ca_keypair.private, issuer_public_key=ca_keypair.public)
        )
        server = TlsServer(
            HOST, 443, ServerIdentity(chain=(expired,), keypair=keypair)
        )
        sloppy = AppTlsStack(ValidationProfile.ACCEPT_EXPIRED, device_store)
        strict = AppTlsStack(ValidationProfile.CORRECT, device_store)
        assert sloppy.connect(server).trusted
        assert not strict.connect(server).trusted

    def test_pinned_rejects_store_resident_mitm(
        self, device_store, traffic, factory, catalog
    ):
        """Only pinning survives a root injected into the store (§6/§8)."""
        legit = traffic.server_identity(HOST, "Entrust Root CA")
        pins = PinStore()
        pins.pin(HOST, legit.chain[-1])
        mitm_kp = generate_keypair(DeterministicRandom("appsec-test-mitm"))
        mitm_root = (
            CertificateBuilder()
            .subject(Name.build(CN="Test MITM Root"))
            .public_key(mitm_kp.public)
            .ca(True)
            .self_sign(mitm_kp.private)
        )
        store = device_store.copy("mitm-device")
        store.add(mitm_root, system=True, source="app:Freedom")
        leaf_kp = generate_keypair(DeterministicRandom("appsec-test-mitm-leaf"))
        forged = (
            CertificateBuilder()
            .subject(Name.build(CN=HOST))
            .issuer(mitm_root.subject)
            .public_key(leaf_kp.public)
            .serial_number(6)
            .tls_server(HOST)
            .sign(mitm_kp.private, issuer_public_key=mitm_kp.public)
        )
        server = TlsServer(
            HOST, 443, ServerIdentity(chain=(forged, mitm_root), keypair=leaf_kp)
        )
        correct = AppTlsStack(ValidationProfile.CORRECT, store)
        pinned = AppTlsStack(ValidationProfile.PINNED, store, pins=pins)
        assert correct.connect(server).trusted  # the §6 hazard
        assert not pinned.connect(server).trusted


class TestMatrix:
    def test_matrix_and_summary(
        self, device_store, self_signed_server, wrong_host_server
    ):
        stacks = {
            profile: AppTlsStack(profile, device_store)
            for profile in (
                ValidationProfile.CORRECT,
                ValidationProfile.ACCEPT_ALL,
                ValidationProfile.NO_HOSTNAME,
            )
        }
        servers = {
            "self_signed": self_signed_server,
            "wrong_host": wrong_host_server,
        }
        outcomes = run_attack_matrix(stacks, servers)
        assert len(outcomes) == 6
        summary = exposure_summary(outcomes)
        assert summary[ValidationProfile.ACCEPT_ALL] == 2
        assert summary[ValidationProfile.NO_HOSTNAME] == 1
        assert summary[ValidationProfile.CORRECT] == 0
