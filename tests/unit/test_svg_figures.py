"""Tests for the SVG figure renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.ecdf import ecdf_points, fraction_zero
from repro.analysis.figures import Figure1Point, Figure2Cell, Figure2Matrix, Figure3Series
from repro.analysis.svg import (
    SvgCanvas,
    render_figure1_svg,
    render_figure2_svg,
    render_figure3_svg,
)
from repro.rootstore.catalog import StorePresence


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_empty_canvas_valid(self):
        svg = SvgCanvas(100, 50).render()
        root = _parse(svg)
        assert root.attrib["width"] == "100"

    def test_escaping(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "<&> AT&T")
        svg = canvas.render()
        _parse(svg)  # must stay well-formed
        assert "AT&amp;T" in svg

    def test_title_tooltip(self):
        canvas = SvgCanvas(10, 10)
        canvas.circle(5, 5, 2, title="tool<tip>")
        root = _parse(canvas.render())
        titles = root.findall(".//{http://www.w3.org/2000/svg}title")
        assert titles and titles[0].text == "tool<tip>"


@pytest.fixture
def figure1_points():
    return [
        Figure1Point("SAMSUNG", "4.1", 139, 0, 500),
        Figure1Point("SAMSUNG", "4.1", 139, 22, 120),
        Figure1Point("HTC", "4.2", 140, 47, 60),
        Figure1Point("SONY", "4.4", 150, 3, 10),
    ]


class TestFigure1:
    def test_valid_and_has_markers(self, figure1_points):
        root = _parse(render_figure1_svg(figure1_points))
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        # one per point plus legend dots
        assert len(circles) >= len(figure1_points)

    def test_four_panels(self, figure1_points):
        svg = render_figure1_svg(figure1_points)
        for version in ("4.1", "4.2", "4.3", "4.4"):
            assert f">{version}<" in svg

    def test_marker_size_scales_with_sessions(self, figure1_points):
        root = _parse(render_figure1_svg(figure1_points))
        titled = {
            circle.find("{http://www.w3.org/2000/svg}title").text: float(
                circle.attrib["r"]
            )
            for circle in root.findall(".//{http://www.w3.org/2000/svg}circle")
            if circle.find("{http://www.w3.org/2000/svg}title") is not None
        }
        big = next(r for t, r in titled.items() if "500 sessions" in t)
        small = next(r for t, r in titled.items() if "10 sessions" in t)
        assert big > small

    def test_empty_points(self):
        _parse(render_figure1_svg([]))


class TestFigure2:
    @pytest.fixture
    def matrix(self):
        cells = [
            Figure2Cell("SAMSUNG 4.1", "manufacturer", "AddTrust Class 1",
                        "deadbeef", 0.9, StorePresence.MOZILLA_AND_IOS7),
            Figure2Cell("VERIZON(US)", "operator", "Certisign AC1S",
                        "cafebabe", 0.65, StorePresence.NOT_RECORDED),
        ]
        return Figure2Matrix(cells=cells)

    def test_valid_with_rows_and_legend(self, matrix):
        svg = render_figure2_svg(matrix)
        root = _parse(svg)
        assert "SAMSUNG 4.1" in svg
        assert "VERIZON(US)" in svg
        assert "not_recorded" in svg
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) >= 2 + 5  # cells + legend

    def test_frequency_drives_radius(self, matrix):
        root = _parse(render_figure2_svg(matrix))
        titled = {
            circle.find("{http://www.w3.org/2000/svg}title").text: float(
                circle.attrib["r"]
            )
            for circle in root.findall(".//{http://www.w3.org/2000/svg}circle")
            if circle.find("{http://www.w3.org/2000/svg}title") is not None
        }
        big = next(r for t, r in titled.items() if "90%" in t)
        small = next(r for t, r in titled.items() if "65%" in t)
        assert big > small


class TestFigure3:
    @pytest.fixture
    def series(self):
        counts_a = [0] * 30 + [5, 10, 100, 1000]
        counts_b = [0] * 5 + [1, 2, 3]
        return [
            Figure3Series(
                label="AOSP 4.4",
                root_count=len(counts_a),
                points=tuple(ecdf_points(counts_a)),
                zero_fraction=fraction_zero(counts_a),
            ),
            Figure3Series(
                label="Non AOSP extras",
                root_count=len(counts_b),
                points=tuple(ecdf_points(counts_b)),
                zero_fraction=fraction_zero(counts_b),
            ),
        ]

    def test_valid_with_curves(self, series):
        svg = render_figure3_svg(series)
        root = _parse(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 2
        assert "AOSP 4.4" in svg

    def test_log_axis_labels(self, series):
        svg = render_figure3_svg(series)
        assert "1e0" in svg and "1e3" in svg

    def test_curve_y_monotone_down(self, series):
        """SVG y decreases (fraction increases) along each curve."""
        root = _parse(render_figure3_svg(series))
        for polyline in root.findall(".//{http://www.w3.org/2000/svg}polyline"):
            ys = [
                float(pair.split(",")[1])
                for pair in polyline.attrib["points"].split()
            ]
            assert all(b <= a + 1e-6 for a, b in zip(ys, ys[1:]))
