"""The deterministic process-pool executor."""

import pytest

from repro.parallel import ParallelExecutor, chunk_ranges, resolve_workers


def _square_chunk(payload, chunk):
    return [payload[index] ** 2 for index in chunk]


def _tag_chunk(payload, chunk):
    return [(index, payload[index]) for index in chunk]


class TestChunkRanges:
    def test_covers_range_exactly_once(self):
        chunks = chunk_ranges(10, 3)
        assert [list(chunk) for chunk in chunks] == [
            [0, 1, 2], [3, 4, 5], [6, 7, 8], [9],
        ]

    def test_single_chunk_when_size_exceeds_count(self):
        assert chunk_ranges(4, 100) == [range(0, 4)]

    def test_empty_range(self):
        assert chunk_ranges(0, 5) == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_resolve_to_cpus(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1


class TestMapChunked:
    PAYLOAD = list(range(100))

    def test_serial_matches_plain_map(self):
        executor = ParallelExecutor(workers=1)
        result = executor.map_chunked(_square_chunk, self.PAYLOAD, len(self.PAYLOAD))
        assert result == [value ** 2 for value in self.PAYLOAD]

    def test_parallel_matches_serial(self):
        serial = ParallelExecutor(workers=1).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        parallel = ParallelExecutor(workers=4).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        assert parallel == serial

    def test_result_order_is_index_order(self):
        result = ParallelExecutor(workers=4).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        assert [index for index, _ in result] == list(range(len(self.PAYLOAD)))

    def test_small_maps_stay_serial(self):
        executor = ParallelExecutor(workers=4, min_items=50)
        result = executor.map_chunked(_square_chunk, [1, 2, 3], 3)
        assert result == [1, 4, 9]

    def test_empty_map(self):
        assert ParallelExecutor(workers=4).map_chunked(_square_chunk, [], 0) == []

    def test_payload_global_restored_after_map(self):
        from repro.parallel import executor as executor_mod

        sentinel = object()
        executor_mod._PAYLOAD = sentinel
        try:
            ParallelExecutor(workers=2).map_chunked(
                _square_chunk, self.PAYLOAD, len(self.PAYLOAD)
            )
            assert executor_mod._PAYLOAD is sentinel
        finally:
            executor_mod._PAYLOAD = None

    def test_nondivisible_counts(self):
        for count in (1, 7, 31, 97):
            serial = ParallelExecutor(workers=1).map_chunked(
                _square_chunk, list(range(count)), count
            )
            parallel = ParallelExecutor(workers=3, min_items=1).map_chunked(
                _square_chunk, list(range(count)), count
            )
            assert parallel == serial == [value ** 2 for value in range(count)]
