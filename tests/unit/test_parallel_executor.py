"""The deterministic process-pool executor."""

import multiprocessing
import os

import pytest

from repro import obs
from repro.parallel import ParallelExecutor, chunk_ranges, resolve_workers


def _square_chunk(payload, chunk):
    return [payload[index] ** 2 for index in chunk]


def _tag_chunk(payload, chunk):
    return [(index, payload[index]) for index in chunk]


def _logged_failing_chunk(payload, chunk):
    """Log each invocation, then raise for indices past the limit."""
    path, limit = payload
    with open(path, "a") as handle:
        handle.write(f"{chunk.start}-{chunk.stop}\n")
    for index in chunk:
        if index >= limit:
            raise PermissionError(f"payload denied at index {index}")
    return list(chunk)


def _payload_oserror_chunk(payload, chunk):
    raise OSError("payload oserror, not pool infrastructure")


def _die_in_worker_chunk(payload, chunk):
    # Kill the worker process outright — from the parent's side this is
    # indistinguishable from any other pool-infrastructure breakage.
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return [payload[index] * 2 for index in chunk]


def _nested_map_chunk(payload, chunk):
    inner = ParallelExecutor(workers=4, min_items=1).map_chunked(
        _square_chunk, payload, len(payload)
    )
    return [inner[index] for index in chunk]


class TestChunkRanges:
    def test_covers_range_exactly_once(self):
        chunks = chunk_ranges(10, 3)
        assert [list(chunk) for chunk in chunks] == [
            [0, 1, 2], [3, 4, 5], [6, 7, 8], [9],
        ]

    def test_single_chunk_when_size_exceeds_count(self):
        assert chunk_ranges(4, 100) == [range(0, 4)]

    def test_empty_range(self):
        assert chunk_ranges(0, 5) == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_resolve_to_cpus(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1


class TestMapChunked:
    PAYLOAD = list(range(100))

    def test_serial_matches_plain_map(self):
        executor = ParallelExecutor(workers=1)
        result = executor.map_chunked(_square_chunk, self.PAYLOAD, len(self.PAYLOAD))
        assert result == [value ** 2 for value in self.PAYLOAD]

    def test_parallel_matches_serial(self):
        serial = ParallelExecutor(workers=1).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        parallel = ParallelExecutor(workers=4).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        assert parallel == serial

    def test_result_order_is_index_order(self):
        result = ParallelExecutor(workers=4).map_chunked(
            _tag_chunk, self.PAYLOAD, len(self.PAYLOAD)
        )
        assert [index for index, _ in result] == list(range(len(self.PAYLOAD)))

    def test_small_maps_stay_serial(self):
        executor = ParallelExecutor(workers=4, min_items=50)
        result = executor.map_chunked(_square_chunk, [1, 2, 3], 3)
        assert result == [1, 4, 9]

    def test_empty_map(self):
        assert ParallelExecutor(workers=4).map_chunked(_square_chunk, [], 0) == []

    def test_zero_items_never_touch_the_pool(self, monkeypatch):
        """Regression: a zero-item map must return [] before any pool
        machinery runs — no fork, no chunking, no telemetry."""
        from repro.parallel import executor as executor_mod

        def bomb(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for 0 items")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", bomb)
        executor = ParallelExecutor(workers=4, min_items=0)
        with obs.capture() as (registry, _):
            assert executor.map_chunked(_square_chunk, [], 0) == []
            assert executor.map_chunked(_square_chunk, [], -3) == []
        assert "parallel.maps" not in registry.to_dict()["counters"]

    def test_fewer_chunks_than_workers_spawns_no_idle_workers(self, monkeypatch):
        """Regression: the pool must be sized to the chunk count, not
        the configured worker count — idle forked workers cost real
        memory (each inherits the CoW payload)."""
        from repro.parallel import executor as executor_mod

        seen_max_workers = []

        class _RecordingFuture:
            def __init__(self, value):
                self._value = value

            def result(self):
                return self._value

        class _RecordingPool:
            def __init__(self, max_workers, mp_context=None):
                seen_max_workers.append(max_workers)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                return _RecordingFuture(fn(*args))

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _RecordingPool)
        monkeypatch.setattr(executor_mod, "_fork_available", lambda: True)
        # 8 workers x 1 chunk-per-worker over 24 items -> 3-item chunks,
        # 8 chunks... force fewer chunks than workers instead:
        executor = ParallelExecutor(workers=8, min_items=1, chunks_per_worker=1)
        payload = list(range(9))
        result = executor.map_chunked(_square_chunk, payload, len(payload))
        assert result == [value ** 2 for value in payload]
        # chunk_size = ceil(9 / 8) = 2 -> 5 chunks < 8 workers
        assert seen_max_workers == [5]

    def test_payload_global_restored_after_map(self):
        from repro.parallel import executor as executor_mod

        sentinel = object()
        executor_mod._PAYLOAD = sentinel
        try:
            ParallelExecutor(workers=2).map_chunked(
                _square_chunk, self.PAYLOAD, len(self.PAYLOAD)
            )
            assert executor_mod._PAYLOAD is sentinel
        finally:
            executor_mod._PAYLOAD = None

    def test_nondivisible_counts(self):
        for count in (1, 7, 31, 97):
            serial = ParallelExecutor(workers=1).map_chunked(
                _square_chunk, list(range(count)), count
            )
            parallel = ParallelExecutor(workers=3, min_items=1).map_chunked(
                _square_chunk, list(range(count)), count
            )
            assert parallel == serial == [value ** 2 for value in range(count)]


class TestPayloadExceptions:
    """Chunk-function failures propagate; they never mask as pool breakage.

    The regression: payload ``OSError``/``PermissionError`` used to be
    caught by the pool-failure handler and silently re-run serially —
    double-executing side effects and swallowing the error.
    """

    def test_payload_permission_error_propagates_parallel(self, tmp_path):
        log = tmp_path / "invocations.log"
        executor = ParallelExecutor(workers=4, min_items=1)
        with pytest.raises(PermissionError, match="payload denied"):
            executor.map_chunked(_logged_failing_chunk, (str(log), 20), 40)

    def test_payload_oserror_propagates_parallel(self):
        executor = ParallelExecutor(workers=2, min_items=1)
        with pytest.raises(OSError, match="payload oserror"):
            executor.map_chunked(_payload_oserror_chunk, None, 16)

    def test_no_chunk_double_execution_on_failure(self, tmp_path):
        log = tmp_path / "invocations.log"
        executor = ParallelExecutor(workers=4, min_items=1)
        with pytest.raises(PermissionError):
            executor.map_chunked(_logged_failing_chunk, (str(log), 20), 40)
        lines = log.read_text().splitlines()
        # every chunk ran at most once: a silent serial re-run would
        # duplicate the chunks that had already executed in the pool.
        assert len(lines) == len(set(lines))
        chunk_size = max(1, -(-40 // (4 * executor.chunks_per_worker)))
        assert len(lines) <= len(chunk_ranges(40, chunk_size))

    def test_payload_error_propagates_serial(self, tmp_path):
        log = tmp_path / "invocations.log"
        executor = ParallelExecutor(workers=1)
        with pytest.raises(PermissionError, match="payload denied"):
            executor.map_chunked(_logged_failing_chunk, (str(log), 0), 10)
        lines = log.read_text().splitlines()
        assert len(lines) == len(set(lines))

    def test_pool_breakage_still_falls_back_to_serial(self):
        payload = list(range(32))
        executor = ParallelExecutor(workers=2, min_items=1)
        with obs.capture() as (registry, _):
            result = executor.map_chunked(_die_in_worker_chunk, payload, 32)
        assert result == [value * 2 for value in payload]
        counters = registry.to_dict()["counters"]
        assert counters["parallel.maps_fallback"] == 1
        assert counters["parallel.serial_reason.BrokenProcessPool"] == 1


class TestNestedMaps:
    """Re-entrant map_chunked runs the inner map serially, correctly.

    The regression: a chunk function that itself called ``map_chunked``
    clobbered the module-global payload slot with a nested fork.
    """

    def test_nested_map_inside_serial_outer(self):
        payload = list(range(12))
        with obs.capture() as (registry, _):
            result = ParallelExecutor(workers=1).map_chunked(
                _nested_map_chunk, payload, len(payload)
            )
        assert result == [value ** 2 for value in payload]
        counters = registry.to_dict()["counters"]
        # every inner map detected the running outer map and went serial
        assert counters["parallel.serial_reason.nested-map"] >= 1
        assert "parallel.maps_forked" not in counters

    def test_nested_map_inside_parallel_outer(self):
        payload = list(range(24))
        result = ParallelExecutor(workers=2, min_items=1).map_chunked(
            _nested_map_chunk, payload, len(payload)
        )
        assert result == [value ** 2 for value in payload]

    def test_payload_global_intact_after_nested_maps(self):
        from repro.parallel import executor as executor_mod

        sentinel = object()
        executor_mod._PAYLOAD = sentinel
        try:
            ParallelExecutor(workers=1).map_chunked(
                _nested_map_chunk, list(range(12)), 12
            )
            assert executor_mod._PAYLOAD is sentinel
        finally:
            executor_mod._PAYLOAD = None


class TestMapTelemetry:
    def test_forked_map_records_counters_and_histogram(self):
        payload = list(range(64))
        with obs.capture() as (registry, _):
            ParallelExecutor(workers=2, min_items=1).map_chunked(
                _square_chunk, payload, len(payload)
            )
        exported = registry.to_dict()
        assert exported["counters"]["parallel.maps"] == 1
        assert exported["counters"]["parallel.maps_forked"] == 1
        assert exported["counters"]["parallel.chunks"] >= 2
        assert exported["histograms"]["parallel.map_seconds"]["count"] == 1

    def test_serial_map_records_reason(self):
        with obs.capture() as (registry, _):
            ParallelExecutor(workers=1).map_chunked(_square_chunk, [1, 2], 2)
        counters = registry.to_dict()["counters"]
        assert counters["parallel.maps_serial"] == 1
        assert counters["parallel.serial_reason.single-worker"] == 1

    def test_map_event_lands_on_current_span(self):
        with obs.capture() as (_, tracer):
            with obs.span("query"):
                ParallelExecutor(workers=1).map_chunked(
                    _square_chunk, [1, 2, 3], 3
                )
        span = tracer.to_dict()["spans"][0]
        events = [event for event in span["events"] if event["name"] == "parallel.map"]
        assert len(events) == 1
        assert events[0]["attributes"]["mode"] == "serial"
