"""Unit tests for interception attribution and its ground-truth scoring."""

from types import SimpleNamespace

import pytest

from repro.analysis.attribution import (
    KIND_AUTHORIZED,
    KIND_CA_INJECTION,
    KIND_ON_PATH,
    AttributionScore,
    attribute_interceptions,
    campaign_id,
    score_attribution,
)
from repro.analysis.classify import PresenceClassifier
from repro.analysis.interception import detect_interception, subject_organization
from repro.scenarios import ScenarioSpec
from repro.scenarios.engine import CampaignTruth, ScenarioFleet
from repro.netalyzr.session import DeviceTuple, DomainProbe, MeasurementSession
from repro.tlssim import InterceptionProxy
from repro.x509.fingerprint import api_fingerprint

TUPLE = DeviceTuple(network="TestNet", public_ip="10.0.0.1", model="m", os_version="4.4")


@pytest.fixture(scope="module")
def classifier(platform_stores, notary):
    return PresenceClassifier(platform_stores.mozilla, platform_stores.ios7, notary)


@pytest.fixture(scope="module")
def proxy():
    return InterceptionProxy(operator_name="Evil Org", seed="attrib-proxy")


@pytest.fixture(scope="module")
def clean_chain(traffic):
    return traffic.server_identity("www.yahoo.com", "VeriSign Class 3 Root").chain


def make_session(session_id, probes, *, roots=(), rooted=False, degraded=False):
    return MeasurementSession(
        session_id=session_id,
        device_tuple=TUPLE,
        manufacturer="test",
        model="m",
        os_version="4.4",
        operator="TestNet",
        country="us",
        rooted=rooted,
        root_certificates=tuple(roots),
        probes=tuple(probes),
        degraded=degraded,
    )


def probe(hostport, chain, pin_ok=True):
    return DomainProbe(
        hostport=hostport, chain=tuple(chain), validation=None, pin_ok=pin_ok
    )


class TestAttribution:
    def test_campaign_id_is_stable(self):
        left = campaign_id(KIND_ON_PATH, "Evil Org")
        assert left == campaign_id(KIND_ON_PATH, "Evil Org")
        assert left != campaign_id(KIND_AUTHORIZED, "Evil Org")
        assert len(left) == 64

    def test_no_probes_no_campaigns(self, classifier):
        report = attribute_interceptions(
            [make_session(1, [])], [], classifier
        )
        assert report.campaigns == ()
        assert report.intercepted_session_ids == ()

    def test_clean_corpus_attributes_nothing(self, classifier, clean_chain):
        sessions = [make_session(1, [probe("www.yahoo.com:443", clean_chain)])]
        report = attribute_interceptions(sessions, [], classifier)
        assert report.campaigns == ()

    def test_on_path_vs_authorized(self, classifier, proxy):
        forged = proxy.forged_chain("www.hsbc.com")
        on_path = make_session(1, [probe("www.hsbc.com:443", forged)])
        authorized = make_session(
            2,
            [probe("www.hsbc.com:443", forged)],
            roots=(proxy.root_certificate,),
        )
        report = attribute_interceptions([on_path, authorized], [], classifier)
        kinds = {c.kind: c for c in report.campaigns}
        assert set(kinds) == {KIND_ON_PATH, KIND_AUTHORIZED}
        assert kinds[KIND_ON_PATH].session_ids == (1,)
        assert kinds[KIND_AUTHORIZED].session_ids == (2,)
        assert kinds[KIND_ON_PATH].organization == "Evil Org"
        fingerprint = api_fingerprint(proxy.root_certificate)
        assert kinds[KIND_ON_PATH].root_fingerprints == (fingerprint,)
        assert report.intercepted_session_ids == (1, 2)

    def test_pinning_saved_and_whitelist_defeated(self, classifier, proxy):
        forged = proxy.forged_chain("www.google.com")
        saved = make_session(
            1, [probe("www.google.com:443", forged, pin_ok=False)]
        )
        defeated = make_session(
            2, [probe("www.google.com:443", forged, pin_ok=True)]
        )
        report = attribute_interceptions([saved, defeated], [], classifier)
        (campaign,) = report.campaigns
        assert campaign.pinning_saved == 1
        assert campaign.whitelist_defeated == 1

    def test_relayed_probes_credited_to_the_interceptor(
        self, classifier, proxy, clean_chain, traffic
    ):
        pinned_clean = traffic.server_identity(
            "www.facebook.com", "GlobalSign Root CA"
        ).chain
        session = make_session(
            1,
            [
                probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com")),
                probe("www.yahoo.com:443", clean_chain),
                probe("www.facebook.com:443", pinned_clean),
            ],
        )
        report = attribute_interceptions([session], [], classifier)
        (campaign,) = report.campaigns
        assert campaign.intercepted_domains == ("www.hsbc.com:443",)
        assert campaign.relayed_domains == (
            "www.facebook.com:443",
            "www.yahoo.com:443",
        )
        # the pinned probe the proxy relayed untouched: pinning saved it.
        assert campaign.pinning_saved == 1

    def test_ca_injection_from_rooted_diffs(self, classifier):
        injector = InterceptionProxy(operator_name="Shadow Org", seed="shadow")
        anchor = injector.root_certificate
        rooted = make_session(1, [], rooted=True)
        unrooted = make_session(2, [], rooted=False)
        degraded = make_session(3, [], rooted=True, degraded=True)
        diffs = [
            SimpleNamespace(session=session, additional=[anchor])
            for session in (rooted, unrooted, degraded)
        ]
        report = attribute_interceptions([], diffs, classifier)
        (campaign,) = report.campaigns
        assert campaign.kind == KIND_CA_INJECTION
        assert campaign.organization == "Shadow Org"
        # only the rooted, non-degraded session counts as evidence.
        assert campaign.session_ids == (1,)
        assert report.intercepted_session_ids == ()

    def test_proxy_roots_not_double_counted_as_injection(
        self, classifier, proxy
    ):
        session = make_session(
            1,
            [probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com"))],
            rooted=True,
        )
        diffs = [
            SimpleNamespace(session=session, additional=[proxy.root_certificate])
        ]
        report = attribute_interceptions([session], diffs, classifier)
        assert {c.kind for c in report.campaigns} == {KIND_ON_PATH}

    def test_report_json_shape(self, classifier, proxy):
        session = make_session(
            7, [probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com"))]
        )
        document = attribute_interceptions([session], [], classifier).to_json()
        assert document["campaign_count"] == 1
        assert document["intercepted_sessions"] == 1
        assert document["kinds"][KIND_ON_PATH] == 1
        assert document["campaigns"][0]["session_count"] == 1


def _fleet(*campaigns):
    return ScenarioFleet(seed="score", campaigns=tuple(campaigns))


def _campaign(name, family, fingerprints, benign=False):
    return CampaignTruth(
        spec=ScenarioSpec(name=name, family=family),
        device_ids=("d",),
        session_ids=(1,),
        root_fingerprints=tuple(fingerprints),
        benign=benign,
    )


class TestScoring:
    def test_recovered_campaign_is_a_true_positive(self, classifier, proxy):
        session = make_session(
            1, [probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com"))]
        )
        report = attribute_interceptions([session], [], classifier)
        fingerprint = api_fingerprint(proxy.root_certificate)
        fleet = _fleet(
            _campaign("evil", "interception-proxy", [fingerprint]),
            _campaign("missed", "ca-injection", ["11" * 32]),
        )
        score = score_attribution(report, fleet)
        assert score.true_positives == 1
        assert score.false_negatives == 1
        assert score.false_positives == 0
        assert score.precision == 1.0
        assert score.recall == 0.5

    def test_accused_control_group_is_a_false_positive(
        self, classifier, proxy
    ):
        # the benign proxy's root attributed as on-path (no session had
        # it provisioned): precision must pay for it.
        session = make_session(
            1, [probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com"))]
        )
        report = attribute_interceptions([session], [], classifier)
        fingerprint = api_fingerprint(proxy.root_certificate)
        fleet = _fleet(
            _campaign("corp", "benign-proxy", [fingerprint], benign=True)
        )
        score = score_attribution(report, fleet)
        assert score.false_positives == 1
        assert score.precision == 0.0

    def test_vacuous_score_is_perfect(self):
        score = AttributionScore(0, 0, 0)
        assert score.precision == 1.0 and score.recall == 1.0
        document = score.to_dict()
        assert document["true_positives"] == 0
        assert document["precision"] == 1.0


class TestDetectInterceptionEdgeCases:
    def test_subject_organization_fallback(self):
        assert subject_organization("CN=Root,O=Acme Corp") == "Acme Corp"
        assert subject_organization("CN=Only Name") == "CN=Only Name"

    def test_empty_corpus(self, classifier):
        assert detect_interception([], classifier) == []

    def test_probe_free_and_clean_sessions_skipped(
        self, classifier, clean_chain
    ):
        sessions = [
            make_session(1, []),
            make_session(2, [probe("www.yahoo.com:443", clean_chain)]),
        ]
        assert detect_interception(sessions, classifier) == []

    def test_empty_chains_skipped(self, classifier):
        session = make_session(1, [probe("www.yahoo.com:443", ())])
        assert detect_interception([session], classifier) == []

    def test_all_rooted_population_with_clean_probes(
        self, classifier, clean_chain
    ):
        sessions = [
            make_session(i, [probe("www.yahoo.com:443", clean_chain)], rooted=True)
            for i in range(1, 4)
        ]
        assert detect_interception(sessions, classifier) == []

    def test_duplicate_root_fingerprints_group_into_one_finding(
        self, classifier, proxy
    ):
        # one proxy forges two domains: same root, one finding, both
        # domains listed (sorted), identity extracted from the subject.
        session = make_session(
            1,
            [
                probe("www.hsbc.com:443", proxy.forged_chain("www.hsbc.com")),
                probe("mail.yahoo.com:443", proxy.forged_chain("mail.yahoo.com")),
            ],
        )
        (finding,) = detect_interception([session], classifier)
        assert finding.intercepted_domains == [
            "mail.yahoo.com:443",
            "www.hsbc.com:443",
        ]
        assert finding.interceptor_organization == "Evil Org"
