"""Tests for the population sweep harness."""

import pytest

from repro.analysis.sweep import PopulationSweep, rooted_fraction_sweep, scale_sweep
from repro.android.population import PopulationConfig


@pytest.fixture(scope="module")
def sweep(factory, catalog, platform_stores):
    return PopulationSweep(
        factory,
        catalog,
        platform_stores,
        base_config=PopulationConfig(seed="sweep-tests", scale=0.03),
    )


class TestSweep:
    def test_run_point_metrics(self, sweep):
        metrics = sweep.run_point(PopulationConfig(seed="point", scale=0.03))
        assert set(metrics) == {
            "sessions",
            "extended_fraction",
            "rooted_fraction",
            "exclusive_of_rooted",
            "unique_certs",
        }
        assert metrics["sessions"] > 100

    def test_rooted_sweep_tracks_parameter(self, sweep):
        points = rooted_fraction_sweep(sweep, values=(0.05, 0.40))
        assert points[0].metrics["rooted_fraction"] < points[1].metrics[
            "rooted_fraction"
        ]

    def test_scale_sweep_scales_sessions(self, sweep):
        points = scale_sweep(sweep, values=(0.02, 0.06))
        assert (
            points[1].metrics["sessions"] > points[0].metrics["sessions"] * 2
        )

    def test_points_record_values(self, sweep):
        points = scale_sweep(sweep, values=(0.02,))
        assert points[0].value == 0.02
