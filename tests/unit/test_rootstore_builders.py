"""Unit tests for store builders, diffing and the factory."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import (
    AospStoreBuilder,
    CertificateFactory,
    RootStore,
    build_platform_stores,
    diff_stores,
)
from repro.rootstore.catalog import default_catalog
from repro.rootstore.diff import overlap_count
from repro.x509 import Name
from repro.x509.builder import make_root_certificate
from repro.x509.fingerprint import equivalence_key
from repro.x509.verify import verify_certificate_signature


@pytest.fixture(scope="module")
def factory():
    return CertificateFactory(seed="builder-tests")


@pytest.fixture(scope="module")
def stores(factory):
    return build_platform_stores(factory)


class TestFactory:
    def test_deterministic_roots(self):
        catalog = default_catalog()
        profile = catalog.core[0]
        a = CertificateFactory(seed="same").root_certificate(profile)
        b = CertificateFactory(seed="same").root_certificate(profile)
        assert a.encoded == b.encoded

    def test_different_seeds_differ(self):
        profile = default_catalog().core[0]
        a = CertificateFactory(seed="one").root_certificate(profile)
        b = CertificateFactory(seed="two").root_certificate(profile)
        assert a.encoded != b.encoded

    def test_root_is_cached(self, factory):
        profile = default_catalog().core[1]
        assert factory.root_certificate(profile) is factory.root_certificate(profile)

    def test_roots_are_valid_x509(self, factory):
        profile = default_catalog().core[2]
        cert = factory.root_certificate(profile)
        assert cert.is_ca and cert.is_self_signed
        verify_certificate_signature(cert, cert.public_key)

    def test_reissue_is_equivalent_not_identical(self, factory):
        profile = next(
            p for p in default_catalog().core if p.reissued_in_mozilla
        )
        canonical = factory.root_certificate(profile)
        reissued = factory.reissued_certificate(profile)
        assert canonical.encoded != reissued.encoded
        assert equivalence_key(canonical) == equivalence_key(reissued)
        assert reissued.not_after > canonical.not_after

    def test_store_certificate_selects_twin(self, factory):
        catalog = default_catalog()
        reissued_profile = next(p for p in catalog.core if p.reissued_in_mozilla)
        plain_profile = next(p for p in catalog.core if not p.reissued_in_mozilla)
        assert factory.store_certificate(
            reissued_profile, "mozilla"
        ) == factory.reissued_certificate(reissued_profile)
        assert factory.store_certificate(
            reissued_profile, "aosp"
        ) == factory.root_certificate(reissued_profile)
        assert factory.store_certificate(
            plain_profile, "mozilla"
        ) == factory.root_certificate(plain_profile)

    def test_expired_root_window(self, factory):
        import datetime

        profile = next(p for p in default_catalog().aosp_only if p.expired_root)
        cert = factory.root_certificate(profile)
        assert cert.is_expired(datetime.datetime(2014, 4, 1))


class TestPlatformStores:
    def test_table1_sizes(self, stores):
        assert stores.table1_sizes() == {
            "AOSP 4.1": 139,
            "AOSP 4.2": 140,
            "AOSP 4.3": 146,
            "AOSP 4.4": 150,
            "iOS7": 227,
            "Mozilla": 153,
        }

    def test_aosp_stores_read_only(self, stores):
        assert all(store.read_only for store in stores.aosp.values())

    def test_mozilla_overlap_117_strict(self, stores):
        """§2: 117 of AOSP 4.4's 150 exist in Mozilla's store."""
        assert overlap_count(stores.aosp["4.4"], stores.mozilla) == 117

    def test_mozilla_overlap_130_equivalent(self, stores):
        """Table 4: 130 under subject+modulus equivalence."""
        assert (
            overlap_count(stores.aosp["4.4"], stores.mozilla, use_equivalence=True)
            == 130
        )

    def test_aosp_version_growth(self, stores):
        diff = diff_stores(stores.aosp["4.4"], stores.aosp["4.1"])
        assert diff.added_count == 11  # 150 - 139
        assert diff.missing_count == 0

    def test_unknown_version_rejected(self, factory):
        with pytest.raises(ValueError):
            AospStoreBuilder(factory).store_for("5.0")


class TestDiff:
    @pytest.fixture(scope="class")
    def base_certs(self):
        out = []
        for index in range(5):
            kp = generate_keypair(DeterministicRandom(f"diff-test-{index}"))
            out.append(make_root_certificate(kp, Name.build(CN=f"Diff CA {index}")))
        return out

    def test_stock(self, base_certs):
        a = RootStore("device", base_certs)
        b = RootStore("reference", base_certs)
        diff = diff_stores(a, b)
        assert diff.is_stock
        assert len(diff.shared) == 5

    def test_additions(self, base_certs):
        device = RootStore("device", base_certs)
        reference = RootStore("reference", base_certs[:3])
        diff = diff_stores(device, reference)
        assert diff.added_count == 2
        assert diff.missing_count == 0
        assert set(diff.added) == set(base_certs[3:])

    def test_missing(self, base_certs):
        device = RootStore("device", base_certs[:3])
        reference = RootStore("reference", base_certs)
        diff = diff_stores(device, reference)
        assert diff.missing_count == 2
        assert diff.added_count == 0

    def test_equivalent_reissue_counts_as_shared(self):
        import datetime

        kp = generate_keypair(DeterministicRandom("diff-equiv"))
        subject = Name.build(CN="Reissued Diff CA")
        old = make_root_certificate(kp, subject, not_after=datetime.datetime(2020, 1, 1))
        new = make_root_certificate(kp, subject, not_after=datetime.datetime(2031, 1, 1))
        device = RootStore("device", [new])
        reference = RootStore("reference", [old])
        diff = diff_stores(device, reference)
        assert diff.is_stock
        assert diff.equivalent_only == ((new, old),)
        strict = diff_stores(device, reference, use_equivalence=False)
        assert strict.added_count == 1 and strict.missing_count == 1

    def test_summary_text(self, base_certs):
        device = RootStore("device", base_certs)
        reference = RootStore("reference", base_certs[:4])
        assert "1 added" in diff_stores(device, reference).summary()
