"""CLI error-path and flag coverage: exit codes, not happy paths."""

import pytest

from repro import __version__
from repro.cli import main


class TestArgparseRejections:
    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_missing_file_argument_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dump-store"])  # store + output both missing
        assert excinfo.value.code == 2
        assert "arguments are required" in capsys.readouterr().err

    def test_diff_store_requires_both_paths(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["diff-store", "only-one.pem"])
        assert excinfo.value.code == 2

    def test_bad_fault_rate_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--fault-rate", "1.5"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--fault-rate", "lots"])
        assert excinfo.value.code == 2

    def test_serve_rejects_non_integer_port(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "eighty"])
        assert excinfo.value.code == 2


class TestVersionFlag:
    def test_version_exits_0_and_prints_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_wins_over_missing_subcommand(self):
        # argparse handles --version before the required-subcommand check.
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestRuntimeErrors:
    def test_analyze_missing_dataset_returns_1(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["analyze", str(missing)]) == 1
        assert "cannot load dataset" in capsys.readouterr().err

    def test_analyze_corrupt_dataset_strict_returns_1(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{ this is not json")
        assert main(["analyze", "--strict", str(corrupt)]) == 1
        assert "cannot load dataset" in capsys.readouterr().err

    def test_show_cert_unreadable_path_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            main(["show-cert", str(tmp_path / "absent.pem")])

    def test_study_uncreatable_storage_dir_returns_1(self, capsys):
        assert main(["study", "--storage", "/proc/nope/storage"]) == 1
        assert "cannot open storage" in capsys.readouterr().err

    def test_study_missing_scenario_file_returns_1(self, tmp_path, capsys):
        missing = tmp_path / "absent.json"
        assert main(["study", "--scenarios", str(missing)]) == 1
        assert "cannot load scenarios" in capsys.readouterr().err

    def test_study_invalid_scenario_spec_returns_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"scenarios": [{"name": "x", "family": "nonsense"}]}')
        assert main(["study", "--scenarios", str(bad)]) == 1
        assert "unknown family" in capsys.readouterr().err

    def test_stream_invalid_scenario_spec_returns_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[not json")
        assert main(["stream", "--scenarios", str(bad)]) == 1
        assert "cannot load scenarios" in capsys.readouterr().err

    def test_serve_invalid_scenario_spec_returns_1(self, tmp_path, capsys):
        bad = tmp_path / "dupes.json"
        bad.write_text(
            '[{"name": "twin", "family": "ca-injection"},'
            ' {"name": "twin", "family": "ca-injection"}]'
        )
        assert main(["serve", "--scenarios", str(bad)]) == 1
        assert "duplicate scenario name" in capsys.readouterr().err
