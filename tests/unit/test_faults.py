"""Tests for the fault-injection subsystem and resilient ingestion."""

import dataclasses

import pytest

from repro.faults import (
    CERT_FAULT_KINDS,
    CertificateUpload,
    ErrorCategory,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Quarantine,
    RetryExhausted,
    RetryPolicy,
    classify_error,
    ingest_certificate,
    resolve_certificate,
    retry_call,
)
from repro.faults.quarantine import FingerprintMismatchError, ValidityError
from repro.netalyzr.dataset import NetalyzrDataset, SessionUpload
from repro.netalyzr.session import DeviceTuple, MeasurementSession
from repro.notary.database import NotaryDatabase
from repro.tlssim.traffic import ObservedLeaf
from repro.x509.fingerprint import fingerprint
from repro.x509.pem import PemError, pem_encode


@pytest.fixture(scope="module")
def certificate(factory, catalog):
    return factory.root_certificate(catalog.all_profiles()[0])


@pytest.fixture(scope="module")
def other_certificate(factory, catalog):
    return factory.root_certificate(catalog.all_profiles()[1])


def make_session(certificates, session_id=1, **overrides):
    defaults = dict(
        session_id=session_id,
        device_tuple=DeviceTuple("T-Online", "1.2.3.4", "GT-I9300", "4.1"),
        manufacturer="Samsung",
        model="GT-I9300",
        os_version="4.1",
        operator="T-Online",
        country="DE",
        rooted=False,
        root_certificates=tuple(certificates),
    )
    defaults.update(overrides)
    return MeasurementSession(**defaults)


class TestResolveCertificate:
    def test_parsed_payload_passes_through(self, certificate):
        upload = CertificateUpload.of(certificate)
        assert resolve_certificate(upload) is certificate

    def test_der_payload_parses(self, certificate):
        upload = CertificateUpload(payload=certificate.encoded)
        assert resolve_certificate(upload).encoded == certificate.encoded

    def test_pem_payload_parses(self, certificate):
        upload = CertificateUpload(payload=pem_encode(certificate.encoded))
        assert resolve_certificate(upload).encoded == certificate.encoded

    def test_fingerprint_claim_enforced(self, certificate, other_certificate):
        upload = CertificateUpload(
            payload=certificate.encoded,
            claimed_fingerprint=fingerprint(other_certificate),
        )
        with pytest.raises(FingerprintMismatchError):
            resolve_certificate(upload)

    def test_truncated_der_rejected(self, certificate):
        upload = CertificateUpload(payload=certificate.encoded[:40])
        with pytest.raises(ValueError):
            resolve_certificate(upload)

    def test_broken_pem_rejected(self, certificate):
        pem = pem_encode(certificate.encoded).replace("-----END", "---END")
        with pytest.raises(PemError):
            resolve_certificate(CertificateUpload(payload=pem))


class TestClassifyError:
    def test_truncation_classified(self, certificate):
        upload = CertificateUpload(payload=certificate.encoded[:40])
        with pytest.raises(ValueError) as excinfo:
            resolve_certificate(upload)
        assert classify_error(excinfo.value) is ErrorCategory.TRUNCATED_DER

    def test_pem_classified(self):
        with pytest.raises(PemError) as excinfo:
            resolve_certificate(CertificateUpload(payload="no armor here"))
        assert classify_error(excinfo.value) is ErrorCategory.MALFORMED_PEM

    def test_validity_and_fingerprint_classified(self, certificate):
        assert (
            classify_error(ValidityError("x", certificate=certificate))
            is ErrorCategory.INVALID_VALIDITY
        )
        assert (
            classify_error(FingerprintMismatchError("x"))
            is ErrorCategory.FINGERPRINT_MISMATCH
        )


class TestQuarantine:
    def test_error_quarantined_with_fingerprint(self, certificate):
        quarantine = Quarantine()
        upload = CertificateUpload(
            payload=certificate.encoded, claimed_fingerprint="00" * 32
        )
        assert ingest_certificate(upload, quarantine, "unit:1") is None
        (record,) = quarantine.records
        assert record.category is ErrorCategory.FINGERPRINT_MISMATCH
        assert record.where == "unit:1"
        # the record parsed, so its actual fingerprint is recorded
        assert record.fingerprint == fingerprint(certificate)

    def test_unparseable_record_keeps_excerpt(self, certificate):
        quarantine = Quarantine()
        upload = CertificateUpload(payload=b"\x30\x82garbage")
        assert ingest_certificate(upload, quarantine, "unit:2") is None
        (record,) = quarantine.records
        assert record.fingerprint is None
        assert "garbage" in record.excerpt

    def test_report_is_deterministic(self, certificate):
        def build() -> str:
            quarantine = Quarantine()
            for index in range(3):
                ingest_certificate(
                    CertificateUpload(payload=certificate.encoded[:50]),
                    quarantine,
                    f"unit:{index}",
                )
            return quarantine.report()

        assert build() == build()


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0)
        assert policy.delays() == (0.1, 0.2, 0.4)

    def test_success_after_transient_failures(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise ConnectionError("transient")
            return "ok"

        outcome = retry_call(
            flaky, RetryPolicy(attempts=3), retryable=(ConnectionError,)
        )
        assert outcome.result == "ok"
        assert outcome.attempts_used == 3
        assert outcome.recovered
        assert calls == [0, 1, 2]

    def test_exhaustion_raises(self):
        def dead(attempt):
            raise ConnectionError("still down")

        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(dead, RetryPolicy(attempts=2), retryable=(ConnectionError,))
        assert excinfo.value.attempts == 2

    def test_non_retryable_propagates_immediately(self):
        def broken(attempt):
            raise KeyError("bug")

        with pytest.raises(KeyError):
            retry_call(broken, RetryPolicy(attempts=5), retryable=(ConnectionError,))


class TestFaultInjector:
    def test_zero_rate_is_a_no_op(self, certificate):
        injector = FaultInjector(rate=0.0)
        uploads = [CertificateUpload.of(certificate)]
        assert injector.corrupt_roots(1, uploads) == uploads
        assert not injector.should_duplicate(1)
        assert injector.transient_failures(1, "a:443", attempts=3) == 0
        assert injector.corrupt_leaf("notary:x", certificate) is None
        assert injector.ledger == []

    def test_same_seed_same_ledger(self, certificate):
        def run():
            injector = FaultInjector(rate=0.5, seed="det")
            uploads = [CertificateUpload.of(certificate)] * 4
            for sid in range(20):
                injector.corrupt_roots(sid, uploads)
                injector.should_duplicate(sid)
                injector.transient_failures(sid, "a:443", attempts=3)
            return injector.ledger

        first, second = run(), run()
        assert first == second
        assert any(f.expected_category is not None for f in first)

    def test_different_seeds_differ(self, certificate):
        def ledger(seed):
            injector = FaultInjector(rate=0.5, seed=seed)
            uploads = [CertificateUpload.of(certificate)] * 4
            for sid in range(30):
                injector.corrupt_roots(sid, uploads)
            return injector.ledger

        assert ledger("a") != ledger("b")

    def test_every_cert_kind_produces_expected_category(self, certificate):
        import random

        injector = FaultInjector(rate=1.0, seed="kinds")
        claimed = fingerprint(certificate)
        for kind in CERT_FAULT_KINDS:
            payload, actual_kind, expected = injector._corrupt_der(
                certificate.encoded, kind, random.Random(7), claimed
            )
            quarantine = Quarantine()
            upload = CertificateUpload(
                payload=payload, claimed_fingerprint=claimed
            )
            assert ingest_certificate(upload, quarantine, "kind") is None
            assert quarantine.records[0].category is expected

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(rate=0.1), rate=0.2)


class TestDatasetIngest:
    def test_pristine_upload_accepted(self, certificate):
        dataset = NetalyzrDataset()
        session = make_session([certificate])
        assert dataset.ingest(SessionUpload.of(session)) is session
        assert dataset.session_count == 1
        assert not session.degraded
        assert len(dataset.quarantine) == 0

    def test_duplicate_session_quarantined(self, certificate):
        dataset = NetalyzrDataset()
        dataset.ingest(SessionUpload.of(make_session([certificate], session_id=7)))
        assert (
            dataset.ingest(
                SessionUpload.of(make_session([certificate], session_id=7))
            )
            is None
        )
        assert dataset.session_count == 1
        assert dataset.health.duplicate_sessions == 1
        assert dataset.quarantine.counts() == {ErrorCategory.DUPLICATE_SESSION: 1}

    def test_partially_valid_session_kept_degraded(
        self, certificate, other_certificate
    ):
        dataset = NetalyzrDataset()
        session = make_session([certificate, other_certificate])
        upload = SessionUpload(
            session=session,
            roots=(
                CertificateUpload.of(certificate),
                CertificateUpload(
                    payload=other_certificate.encoded[:33],
                    claimed_fingerprint=fingerprint(other_certificate),
                ),
            ),
        )
        accepted = dataset.ingest(upload)
        assert accepted is session
        assert accepted.degraded
        assert accepted.root_certificates == (certificate,)
        assert dataset.health.degraded_sessions == 1
        assert dataset.health.quarantined_certificates == 1
        (record,) = dataset.quarantine.records
        assert record.where == "session:1/root:1"

    def test_ingest_never_raises_on_garbage_roots(self, certificate):
        dataset = NetalyzrDataset()
        session = make_session([certificate])
        upload = SessionUpload(
            session=session,
            roots=(
                CertificateUpload(payload=b""),
                CertificateUpload(payload="not pem"),
                CertificateUpload(payload=b"\xff" * 64),
            ),
        )
        accepted = dataset.ingest(upload)
        assert accepted is not None and accepted.degraded
        assert accepted.root_certificates == ()
        assert len(dataset.quarantine) == 3


class TestNotaryIngest:
    def test_corrupt_leaf_quarantined_database_untouched(self, certificate):
        notary = NotaryDatabase()
        leaf = ObservedLeaf(
            certificate=certificate, issuer_name="X", expired=False
        )
        ok = notary.ingest_leaf(
            leaf,
            payload=CertificateUpload(
                payload=certificate.encoded[:50],
                claimed_fingerprint=fingerprint(certificate),
            ),
            where="notary:unit",
        )
        assert not ok
        assert notary.total_certificates == 0
        assert not notary.seen_in_traffic(certificate)
        (record,) = notary.quarantine.records
        assert record.category is ErrorCategory.TRUNCATED_DER

    def test_valid_leaf_ingested(self, certificate):
        notary = NotaryDatabase()
        leaf = ObservedLeaf(
            certificate=certificate, issuer_name="X", expired=False
        )
        assert notary.ingest_leaf(leaf, chain_roots=(certificate,))
        assert notary.total_certificates == 1
        assert notary.seen_in_traffic(certificate)
        assert len(notary.quarantine) == 0


class TestCollectorFaults:
    def test_probe_faults_surface_in_health(self, factory, catalog):
        from repro.android.population import PopulationConfig, PopulationGenerator
        from repro.netalyzr import collect_dataset

        population = PopulationGenerator(
            PopulationConfig(seed="collector-faults", scale=0.01), factory, catalog
        ).generate()
        injector = FaultInjector(rate=0.5, seed="collector-faults")
        dataset = collect_dataset(population, factory, catalog, injector=injector)
        assert dataset.health.retried_probes > 0
        assert dataset.health.recovered_probes > 0
        assert dataset.health.dropped_probes > 0
        dropped = [
            f for f in injector.ledger if f.kind is FaultKind.DROPPED_PROBE
        ]
        assert len(dropped) == dataset.health.dropped_probes
        by_where = dataset.quarantine.by_where()
        for fault in dropped:
            assert by_where[fault.where].category is ErrorCategory.PROBE_FAILURE

    def test_transient_failures_keep_probe_results(self, factory, catalog):
        """A recovered probe yields the same DomainProbe as a clean run."""
        from repro.android.population import PopulationConfig, PopulationGenerator
        from repro.netalyzr import collect_dataset

        population = PopulationGenerator(
            PopulationConfig(seed="collector-faults", scale=0.01), factory, catalog
        ).generate()
        clean = collect_dataset(population, factory, catalog)
        injector = FaultInjector(rate=0.5, seed="collector-faults")
        faulty = collect_dataset(population, factory, catalog, injector=injector)
        clean_by_id = {s.session_id: s for s in clean.sessions}
        recovered_wheres = {
            f.where
            for f in injector.ledger
            if f.kind is FaultKind.TRANSIENT_HANDSHAKE
        }
        checked = 0
        for session in faulty.sessions:
            for probe in session.probes:
                where = f"session:{session.session_id}/probe:{probe.hostport}"
                if where not in recovered_wheres:
                    continue
                clean_probe = next(
                    p
                    for p in clean_by_id[session.session_id].probes
                    if p.hostport == probe.hostport
                )
                assert probe.validation.trusted == clean_probe.validation.trusted
                assert probe.chain == clean_probe.chain
                checked += 1
        assert checked > 0


class TestHealthCounters:
    def test_merge_sums_every_field(self):
        from repro.faults import IngestHealth

        left = IngestHealth(accepted_sessions=2, dropped_probes=1)
        right = IngestHealth(accepted_sessions=3, retried_probes=4)
        merged = left.merge(right)
        assert merged.accepted_sessions == 5
        assert merged.dropped_probes == 1
        assert merged.retried_probes == 4
        for spec in dataclasses.fields(merged):
            assert getattr(merged, spec.name) == getattr(
                left, spec.name
            ) + getattr(right, spec.name)
