"""Tests for SCT embedding and CT enforcement."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.ctlog import CertificateLog, CtPolicy, attach_scts, scts_of
from repro.ctlog.sct import SignedCertificateTimestamp
from repro.x509 import CertificateBuilder, Name
from repro.x509.builder import make_root_certificate
from repro.x509.verify import is_signed_by


@pytest.fixture(scope="module")
def ca():
    keypair = generate_keypair(DeterministicRandom("sct-ca"))
    certificate = make_root_certificate(keypair, Name.build(CN="SCT CA", O="S"))
    return keypair, certificate


@pytest.fixture(scope="module")
def log():
    return CertificateLog("sct-test-log", seed="sct-log")


@pytest.fixture(scope="module")
def ct_leaf(ca, log):
    ca_kp, ca_cert = ca
    leaf_kp = generate_keypair(DeterministicRandom("sct-leaf"))
    precert = (
        CertificateBuilder()
        .subject(Name.build(CN="ct.example.com"))
        .issuer(ca_cert.subject)
        .public_key(leaf_kp.public)
        .serial_number(5)
        .tls_server("ct.example.com")
        .sign(ca_kp.private, issuer_public_key=ca_kp.public)
    )
    sct = log.issue_sct(precert)
    return attach_scts(precert, [sct], ca_kp.private), precert


class TestSctEmbedding:
    def test_sct_extension_present(self, ct_leaf):
        final, precert = ct_leaf
        scts = scts_of(final)
        assert len(scts) == 1
        assert scts[0].log_name == "sct-test-log"
        assert scts_of(precert) == []

    def test_reissued_cert_still_valid(self, ct_leaf, ca):
        final, precert = ct_leaf
        assert is_signed_by(final, ca[1])
        assert final.subject == precert.subject
        assert final.serial_number == precert.serial_number
        assert final.encoded != precert.encoded

    def test_sct_codec_roundtrip(self, ct_leaf):
        final, _ = ct_leaf
        sct = scts_of(final)[0]
        assert SignedCertificateTimestamp.from_der(sct.to_der()) == sct


class TestCtPolicy:
    def test_valid_sct_accepted(self, ct_leaf, log):
        final, _ = ct_leaf
        policy = CtPolicy({log.name: log.public_key})
        assert policy.check(final)

    def test_missing_sct_rejected(self, ct_leaf, log, ca):
        _, precert = ct_leaf
        policy = CtPolicy({log.name: log.public_key})
        assert not policy.check(precert)

    def test_unknown_log_rejected(self, ct_leaf):
        final, _ = ct_leaf
        other = CertificateLog("other-log", seed="other")
        policy = CtPolicy({other.name: other.public_key})
        assert not policy.check(final)

    def test_forged_sct_rejected(self, ca, log):
        """An attacker cannot mint an SCT without the log key."""
        ca_kp, ca_cert = ca
        leaf_kp = generate_keypair(DeterministicRandom("sct-forged"))
        precert = (
            CertificateBuilder()
            .subject(Name.build(CN="forged-ct.example.com"))
            .issuer(ca_cert.subject)
            .public_key(leaf_kp.public)
            .serial_number(6)
            .tls_server("forged-ct.example.com")
            .sign(ca_kp.private, issuer_public_key=ca_kp.public)
        )
        from repro.ctlog.sct import issue_sct

        mallory = generate_keypair(DeterministicRandom("sct-mallory"))
        fake_sct = issue_sct(log.name, mallory.private, precert.tbs_encoded)
        final = attach_scts(precert, [fake_sct], ca_kp.private)
        policy = CtPolicy({log.name: log.public_key})
        assert not policy.check(final)

    def test_logged_cert_provable_in_log(self, ct_leaf, log):
        _, precert = ct_leaf
        assert log.contains(precert)
        sth = log.signed_tree_head()
        index, proof = log.inclusion_proof(precert, sth.tree_size)
        from repro.ctlog import verify_inclusion

        assert verify_inclusion(
            precert.encoded, index, sth.tree_size, proof, sth.root_hash
        )
