"""Unit tests for the traffic generator and endpoint catalog."""

import pytest

from repro.rootstore.factory import STUDY_NOW
from repro.tlssim import TlsTrafficGenerator
from repro.tlssim.endpoints import (
    INTERCEPTED_DOMAINS,
    PROBE_TARGETS,
    WHITELISTED_DOMAINS,
    endpoint_for,
)
from repro.x509.verify import is_signed_by


class TestEndpoints:
    def test_table6_counts(self):
        """Table 6: 12 intercepted and 9 whitelisted domains."""
        assert len(INTERCEPTED_DOMAINS) == 12
        assert len(WHITELISTED_DOMAINS) == 9

    def test_probe_targets_unique(self):
        hostports = [e.hostport for e in PROBE_TARGETS]
        assert len(hostports) == len(set(hostports))

    def test_special_ports(self):
        """SUPL (7275) and Facebook chat (8883) are whitelisted ports."""
        assert endpoint_for("supl.google.com:7275").port == 7275
        assert endpoint_for("orcart.facebook.com:8883").port == 8883

    def test_pinned_endpoints(self):
        pinned = {e.host for e in PROBE_TARGETS if e.pinned}
        assert "www.facebook.com" in pinned
        assert "www.twitter.com" in pinned
        assert "www.google.com" in pinned
        # Banks were interceptable -- not pinned in 2014.
        assert "www.bankofamerica.com" not in pinned

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            endpoint_for("nonexistent.example:443")

    def test_issuers_exist_in_catalog(self, catalog):
        for endpoint in PROBE_TARGETS:
            catalog.by_name(endpoint.issuer_ca)  # must not raise


class TestLeafGeneration:
    def test_leaf_counts_follow_profile(self, factory, catalog):
        generator = TlsTrafficGenerator(factory, catalog, scale=1.0)
        profile = next(p for p in catalog.core if p.current_leaves > 10)
        leaves = list(generator.leaves_for_profile(profile))
        current = [l for l in leaves if not l.expired]
        expired = [l for l in leaves if l.expired]
        assert len(current) == profile.current_leaves
        assert len(expired) == profile.expired_leaves

    def test_leaves_verify_under_issuer(self, factory, catalog):
        """Small CAs sign leaves directly; big CAs go through an
        intermediate whose chain resolves to the root."""
        generator = TlsTrafficGenerator(factory, catalog, scale=1.0)
        small = next(p for p in catalog.core if 0 < p.current_leaves < 20)
        small_root = factory.root_certificate(small)
        for leaf in list(generator.leaves_for_profile(small))[:3]:
            assert leaf.intermediates == ()
            assert is_signed_by(leaf.certificate, small_root)
        big = next(p for p in catalog.core if p.current_leaves >= 20)
        big_root = factory.root_certificate(big)
        for leaf in list(generator.leaves_for_profile(big))[:3]:
            assert len(leaf.intermediates) == 1
            intermediate = leaf.intermediates[0]
            assert is_signed_by(leaf.certificate, intermediate)
            assert is_signed_by(intermediate, big_root)

    def test_expired_leaves_are_expired(self, traffic, catalog):
        profile = next(p for p in catalog.extras if p.expired_leaves > 0)
        for leaf in traffic.leaves_for_profile(profile):
            assert leaf.expired == leaf.certificate.is_expired(STUDY_NOW)

    def test_zero_profile_yields_nothing(self, traffic, catalog):
        profile = next(
            p for p in catalog.extras if p.current_leaves == 0 and p.expired_leaves == 0
        )
        assert list(traffic.leaves_for_profile(profile)) == []

    def test_scaling_keeps_small_counts_alive(self, factory, catalog):
        """A root signing 3 leaves still signs >=1 at scale 0.1 (needed
        for Table 3's version orderings)."""
        generator = TlsTrafficGenerator(factory, catalog, scale=0.1)
        profile = next(
            p for p in catalog.aosp_only if 0 < p.current_leaves <= 5
        )
        leaves = [l for l in generator.leaves_for_profile(profile) if not l.expired]
        assert len(leaves) >= 1

    def test_invalid_scale_rejected(self, factory):
        with pytest.raises(ValueError):
            TlsTrafficGenerator(factory, scale=0)
        with pytest.raises(ValueError):
            TlsTrafficGenerator(factory, scale=-0.5)

    def test_oversampling_scale_multiplies_population(self, factory, catalog):
        """scale > 1 oversamples the calibrated mix (benchmark runs)."""
        generator = TlsTrafficGenerator(factory, catalog, scale=2.0)
        profile = next(p for p in catalog.core if p.current_leaves >= 10)
        leaves = [l for l in generator.leaves_for_profile(profile) if not l.expired]
        assert len(leaves) == profile.current_leaves * 2

    def test_leaf_hosts_are_ascii(self, traffic, catalog):
        profile = next(p for p in catalog.aosp_only if p.current_leaves > 0)
        for leaf in traffic.leaves_for_profile(profile):
            leaf.host.encode("ascii")


class TestServerIdentity:
    def test_identity_chain_shape(self, traffic):
        identity = traffic.server_identity("www.example.com", "VeriSign Class 3 Root")
        assert len(identity.chain) == 2
        assert identity.leaf.matches_hostname("www.example.com")
        assert identity.chain[1].is_self_signed

    def test_identity_verifies(self, traffic):
        identity = traffic.server_identity("www.yahoo.com", "VeriSign Class 3 Root")
        assert is_signed_by(identity.leaf, identity.chain[1])

    def test_identity_deterministic(self, traffic):
        a = traffic.server_identity("www.chase.com", "Entrust Root CA")
        b = traffic.server_identity("www.chase.com", "Entrust Root CA")
        assert a.leaf == b.leaf
