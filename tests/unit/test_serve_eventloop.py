"""Unit tests for the event-loop transport: framing, registry, live loop.

The framing functions (``parse_request`` / ``encode_response_head``)
are pure and tested byte-by-byte; the live-loop tests start a real
:class:`EventLoopServer` on a loopback port over the hand-built
snapshot from ``test_serve_app`` — no study build, still real sockets,
keep-alive and pipelining.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import (
    EventLoopServer,
    Request,
    Response,
    ServeApp,
    SnapshotHolder,
    StudyServer,
    TRANSPORT_NAMES,
    bind_listener,
    create_server,
)
from repro.serve.eventloop import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    BadRequest,
    encode_response_head,
    parse_request,
)

from tests.unit.test_serve_app import make_snapshot

GET_HEALTH = b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n"


class TestParseRequest:
    def test_complete_get(self):
        parsed = parse_request(bytearray(GET_HEALTH))
        assert parsed is not None
        request, keep_alive, consumed = parsed
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.headers["host"] == "t"
        assert keep_alive is True
        assert consumed == len(GET_HEALTH)

    def test_incremental_feed_until_complete(self):
        buffer = bytearray()
        for offset in range(len(GET_HEALTH) - 1):
            buffer.append(GET_HEALTH[offset])
            assert parse_request(buffer) is None, f"complete at byte {offset}?"
        buffer.append(GET_HEALTH[-1])
        assert parse_request(buffer) is not None

    def test_pipelined_requests_consume_in_order(self):
        second = b"GET /v1/roots HTTP/1.1\r\n\r\n"
        buffer = bytearray(GET_HEALTH + second)
        request, _, consumed = parse_request(buffer)
        assert request.path == "/v1/health"
        del buffer[:consumed]
        request, _, consumed = parse_request(buffer)
        assert request.path == "/v1/roots"
        assert consumed == len(second)
        del buffer[:consumed]
        assert parse_request(buffer) is None

    def test_query_string_split_from_path(self):
        raw = b"GET /v1/roots?limit=5&offset=2 HTTP/1.1\r\n\r\n"
        request, _, _ = parse_request(bytearray(raw))
        assert request.path == "/v1/roots"
        assert request.query == "limit=5&offset=2"

    def test_body_counted_into_consumed(self):
        raw = b"POST /admin/reload HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        parsed = parse_request(bytearray(raw[:-1]))
        assert parsed is None  # body incomplete
        request, _, consumed = parse_request(bytearray(raw))
        assert request.method == "POST"
        assert consumed == len(raw)

    @pytest.mark.parametrize(
        ("version", "connection", "expected"),
        [
            ("HTTP/1.1", None, True),
            ("HTTP/1.1", "close", False),
            ("HTTP/1.1", "Close", False),
            ("HTTP/1.0", None, False),
            ("HTTP/1.0", "keep-alive", True),
        ],
    )
    def test_keep_alive_negotiation(self, version, connection, expected):
        raw = f"GET / {version}\r\n"
        if connection is not None:
            raw += f"Connection: {connection}\r\n"
        _, keep_alive, _ = parse_request(bytearray(raw.encode() + b"\r\n"))
        assert keep_alive is expected

    @pytest.mark.parametrize(
        ("raw", "status"),
        [
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /too many parts HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\n badname: x\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n",
                413,
            ),
        ],
    )
    def test_rejections(self, raw, status):
        with pytest.raises(BadRequest) as excinfo:
            parse_request(bytearray(raw))
        assert excinfo.value.status == status

    def test_oversized_header_block_with_no_terminator(self):
        with pytest.raises(BadRequest) as excinfo:
            parse_request(bytearray(b"X" * (MAX_HEADER_BYTES + 1)))
        assert excinfo.value.status == 431

    def test_oversized_header_block_with_terminator(self):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"y" * MAX_HEADER_BYTES + b"\r\n\r\n"
        with pytest.raises(BadRequest) as excinfo:
            parse_request(bytearray(raw))
        assert excinfo.value.status == 431


class TestEncodeResponseHead:
    def test_basic_head(self):
        head = encode_response_head(
            Response(200, b"{}", headers=(("ETag", '"g0-ab"'),)),
            body_length=2,
            keep_alive=True,
        )
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2\r\n" in head
        assert b'ETag: "g0-ab"\r\n' in head
        assert b"Connection: keep-alive\r\n" in head
        assert head.endswith(b"\r\n\r\n")

    def test_close_variant_and_unknown_status(self):
        head = encode_response_head(
            Response(299, b""), body_length=0, keep_alive=False
        )
        assert head.startswith(b"HTTP/1.1 299 ")
        assert b"Connection: close\r\n" in head


class TestTransportRegistry:
    def test_known_names(self):
        assert TRANSPORT_NAMES == ("threaded", "evloop")

    def test_unknown_transport_raises(self):
        app = ServeApp(SnapshotHolder(make_snapshot()))
        with pytest.raises(ValueError, match="unknown transport"):
            create_server("gevent", app)

    def test_registry_builds_each_transport(self):
        app = ServeApp(SnapshotHolder(make_snapshot()))
        threaded = create_server("threaded", app)
        assert isinstance(threaded, StudyServer)
        threaded.stop()
        evloop = create_server("evloop", app)
        assert isinstance(evloop, EventLoopServer)
        evloop.stop()

    def test_bind_listener_resolves_port_zero(self):
        listener = bind_listener("127.0.0.1", 0)
        try:
            assert listener.getsockname()[1] > 0
        finally:
            listener.close()


def _recv_response(
    sock: socket.socket, leftover: bytearray | None = None
) -> tuple[bytes, bytes]:
    """Read exactly one response (head, body) off a keep-alive socket.

    Pass the same ``leftover`` bytearray across calls when responses
    are pipelined — bytes past the parsed response stay in it.
    """
    received = leftover if leftover is not None else bytearray()
    while b"\r\n\r\n" not in received:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("closed before headers completed")
        received += chunk
    head_end = received.index(b"\r\n\r\n")
    head = bytes(received[:head_end])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.lower() == b"content-length":
            length = int(value)
    while len(received) < head_end + 4 + length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("closed mid-body")
        received += chunk
    body = bytes(received[head_end + 4 : head_end + 4 + length])
    del received[: head_end + 4 + length]
    return head, body


@pytest.fixture
def evloop_server():
    app = ServeApp(SnapshotHolder(make_snapshot()), capacity=8)
    server = EventLoopServer(app, idle_timeout=5.0).start()
    yield server
    server.stop()


@pytest.fixture
def client(evloop_server):
    sock = socket.create_connection(
        (evloop_server.host, evloop_server.port), timeout=10
    )
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    yield sock
    sock.close()


class TestEventLoopLive:
    def test_keep_alive_get_twice(self, client):
        for _ in range(2):
            client.sendall(GET_HEALTH)
            head, body = _recv_response(client)
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b'"status": "ok"' in body or b"ok" in body

    def test_pipelined_batch_comes_back_in_order(self, client):
        paths = ["/v1/tables/1", "/v1/roots", "/v1/tables/2"]
        client.sendall(
            b"".join(
                f"GET {p} HTTP/1.1\r\nHost: t\r\n\r\n".encode() for p in paths
            )
        )
        leftover = bytearray()
        bodies = [_recv_response(client, leftover)[1] for _ in paths]
        assert bodies[0] != bodies[1] != bodies[2]
        assert b'"row"' in bodies[0] and b"1" in bodies[0]
        assert b'"row"' in bodies[2] and b"2" in bodies[2]

    def test_etag_304_round_trip(self, client):
        client.sendall(b"GET /v1/tables/1 HTTP/1.1\r\nHost: t\r\n\r\n")
        head, body = _recv_response(client)
        etag = next(
            line.partition(b":")[2].strip()
            for line in head.split(b"\r\n")
            if line.lower().startswith(b"etag:")
        )
        client.sendall(
            b"GET /v1/tables/1 HTTP/1.1\r\nHost: t\r\nIf-None-Match: "
            + etag
            + b"\r\n\r\n"
        )
        head, body = _recv_response(client)
        assert head.startswith(b"HTTP/1.1 304")
        assert body == b""

    def test_head_has_length_but_no_body(self, client):
        # HEAD advertises the GET body's length but sends no bytes: the
        # very next response must start right after the header block.
        client.sendall(
            b"HEAD /v1/tables/1 HTTP/1.1\r\nHost: t\r\n\r\n" + GET_HEALTH
        )
        leftover = bytearray()
        while b"\r\n\r\n" not in leftover:
            leftover += client.recv(65536)
        head_end = leftover.index(b"\r\n\r\n")
        head = bytes(leftover[:head_end])
        assert head.startswith(b"HTTP/1.1 200")
        assert b"Content-Length: 0" not in head  # advertises the GET size
        del leftover[: head_end + 4]
        head, body = _recv_response(client, leftover)
        assert head.startswith(b"HTTP/1.1 200")
        assert body

    def test_bad_request_answered_then_closed(self, client):
        client.sendall(b"NONSENSE\r\n\r\n")
        head, body = _recv_response(client)
        assert head.startswith(b"HTTP/1.1 400")
        assert b"error" in body
        assert b"Connection: close" in head
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if client.recv(1024) == b"":
                return
        raise AssertionError("connection not closed after 400")

    def test_http10_connection_closes_after_response(self, client):
        client.sendall(b"GET /v1/health HTTP/1.0\r\n\r\n")
        head, _ = _recv_response(client)
        assert b"Connection: close" in head
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if client.recv(1024) == b"":
                return
        raise AssertionError("HTTP/1.0 connection left open")


class TestOffloadedReloadFailure:
    """Satellite: a reloader that raises mid-pipeline must not poison
    the connection — the app's typed 500 comes back in order, pipelined
    requests behind it still answer, and every later request keeps
    serving the old snapshot."""

    def test_failure_preserves_order_and_old_snapshot(self):
        gate = threading.Event()

        def exploding_reloader():
            gate.wait(timeout=10)
            raise RuntimeError("rebuild blew up mid-pipeline")

        app = ServeApp(
            SnapshotHolder(make_snapshot(2, marker="v2")),
            reloader=exploding_reloader,
        )
        server = EventLoopServer(app, idle_timeout=5.0).start()
        sock = socket.create_connection((server.host, server.port), timeout=10)
        try:
            # Pipeline the reload and a GET behind it on one connection.
            sock.sendall(
                b"POST /admin/reload HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /v1/tables/1 HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            # The reload is gated off-loop; other connections are live.
            other = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            try:
                other.sendall(GET_HEALTH)
                head, _ = _recv_response(other)
                assert head.startswith(b"HTTP/1.1 200")
            finally:
                other.close()
            gate.set()
            leftover = bytearray()
            head, body = _recv_response(sock, leftover)
            assert head.startswith(b"HTTP/1.1 500")
            error = json.loads(body)["error"]
            assert error["kind"] == "reload_failed"
            assert error["generation"] == 2
            # The pipelined GET answers next, from the old snapshot.
            head, body = _recv_response(sock, leftover)
            assert head.startswith(b"HTTP/1.1 200")
            assert json.loads(body) == [["row", 1, "v2"]]
            # A later request on the same connection: still generation 2.
            sock.sendall(GET_HEALTH)
            head, body = _recv_response(sock, leftover)
            assert json.loads(body)["snapshot"]["marker"] == "v2"
        finally:
            sock.close()
            server.stop()
        counters = app.registry.to_dict()["counters"]
        assert counters["serve.reload_failures"] == 1
        # the typed 500 means nothing escaped into the offload guard
        assert "serve.loop.offload_errors" not in counters


def _count_length(head: bytes) -> int:
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            return int(line.partition(b":")[2])
    return -1


class TestEventLoopParityWithThreaded:
    def test_same_bytes_and_etags_as_threaded(self):
        """Both transports serve identical bodies and ETags (satellite b)."""
        snapshot = make_snapshot()
        evloop_app = ServeApp(SnapshotHolder(snapshot))
        threaded_app = ServeApp(SnapshotHolder(snapshot))
        evloop = EventLoopServer(evloop_app).start()
        threaded = StudyServer(threaded_app).start()
        try:
            for path in ("/v1/tables/3", "/v1/figures/2", "/v1/roots"):
                raw = f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                results = []
                for server in (evloop, threaded):
                    sock = socket.create_connection(
                        (server.host, server.port), timeout=10
                    )
                    try:
                        sock.sendall(raw)
                        head, body = _recv_response(sock)
                    finally:
                        sock.close()
                    etag = [
                        line
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"etag:")
                    ]
                    results.append((etag, body))
                assert results[0] == results[1], path
        finally:
            evloop.stop()
            threaded.stop()
