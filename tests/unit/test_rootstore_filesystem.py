"""Unit tests for the Android cacerts directory emulation."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.rootstore import CacertsDirectory, ReadOnlyStoreError, RootStore
from repro.x509 import Name
from repro.x509.builder import make_root_certificate
from repro.x509.fingerprint import subject_hash


@pytest.fixture(scope="module")
def certs():
    out = []
    for index in range(3):
        kp = generate_keypair(DeterministicRandom(f"fs-test-{index}"))
        out.append(make_root_certificate(kp, Name.build(CN=f"FS Test CA {index}")))
    return out


class TestMountSemantics:
    def test_unrooted_cannot_remount(self, tmp_path):
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        with pytest.raises(ReadOnlyStoreError, match="root privileges"):
            cacerts.remount_rw()

    def test_unrooted_cannot_install(self, tmp_path, certs):
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        with pytest.raises(ReadOnlyStoreError, match="read-only mount"):
            cacerts.install(certs[0])

    def test_rooted_can_remount_and_install(self, tmp_path, certs):
        cacerts = CacertsDirectory(tmp_path, rooted=True)
        cacerts.remount_rw()
        path = cacerts.install(certs[0])
        assert path.exists()
        cacerts.remount_ro()
        with pytest.raises(ReadOnlyStoreError):
            cacerts.install(certs[1])

    def test_system_writes_bypass_mount(self, tmp_path, certs):
        """Firmware build steps write with system privilege."""
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        cacerts.install(certs[0], system=True)
        assert len(cacerts.list_files()) == 1


class TestFileLayout:
    def test_filename_is_subject_hash(self, tmp_path, certs):
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        path = cacerts.install(certs[0], system=True)
        assert path.name == f"{subject_hash(certs[0])}.0"

    def test_hash_collision_suffix(self, tmp_path):
        """Two certs with the same subject get .0 and .1 suffixes."""
        kp_a = generate_keypair(DeterministicRandom("collide-a"))
        kp_b = generate_keypair(DeterministicRandom("collide-b"))
        subject = Name.build(CN="Colliding Subject")
        cert_a = make_root_certificate(kp_a, subject)
        cert_b = make_root_certificate(kp_b, subject)
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        path_a = cacerts.install(cert_a, system=True)
        path_b = cacerts.install(cert_b, system=True)
        assert path_a.name.endswith(".0")
        assert path_b.name.endswith(".1")
        assert path_a.stem == path_b.stem

    def test_reinstall_same_cert_reuses_file(self, tmp_path, certs):
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        first = cacerts.install(certs[0], system=True)
        second = cacerts.install(certs[0], system=True)
        assert first == second
        assert len(cacerts.list_files()) == 1


class TestRoundTrip:
    def test_populate_and_load(self, tmp_path, certs):
        store = RootStore("image", certs)
        cacerts = CacertsDirectory(tmp_path, rooted=False)
        assert cacerts.populate(store) == 3
        loaded = cacerts.load_store()
        assert len(loaded) == 3
        assert set(loaded) == set(certs)

    def test_remove(self, tmp_path, certs):
        cacerts = CacertsDirectory(tmp_path, rooted=True)
        cacerts.remount_rw()
        cacerts.install(certs[0])
        cacerts.install(certs[1])
        assert cacerts.remove(certs[0])
        assert not cacerts.remove(certs[2])
        loaded = cacerts.load_store()
        assert set(loaded) == {certs[1]}

    def test_malicious_app_flow(self, tmp_path, certs):
        """§6's attack: root, remount, inject a CA, restore the mount."""
        cacerts = CacertsDirectory(tmp_path, rooted=True)
        cacerts.populate(RootStore("image", certs[:2]))
        cacerts.remount_rw()
        cacerts.install(certs[2])  # the injected "CRAZY HOUSE"-style root
        cacerts.remount_ro()
        loaded = cacerts.load_store()
        assert certs[2] in loaded
        assert len(loaded) == 3
