"""Unit tests for the store auditor (§8's recommendations engine)."""

import pytest

from repro.analysis.classify import PresenceClassifier
from repro.audit import AuditPolicy, Severity, StoreAuditor, default_policy
from repro.x509.constraints import NameConstraints


@pytest.fixture(scope="module")
def auditor(platform_stores, notary):
    classifier = PresenceClassifier(
        platform_stores.mozilla, platform_stores.ios7, notary
    )
    return StoreAuditor(
        platform_stores.aosp["4.4"], classifier=classifier, notary=notary
    )


@pytest.fixture
def device_store(platform_stores):
    return platform_stores.aosp["4.4"].copy("device-under-audit", read_only=False)


class TestCleanStore:
    def test_stock_store_only_expired_anchor_finding(self, auditor, device_store):
        report = auditor.audit(device_store)
        assert report.additions == 0
        assert report.missing == 0
        rules = {finding.rule for finding in report.findings}
        # The stock AOSP 4.4 store legitimately contains the expired
        # Firmaprofesional root -- the only expected finding.
        assert rules == {"expired-anchor"}
        assert report.max_severity is Severity.LOW

    def test_removable_dead_weight_matches_table4(self, auditor, device_store):
        report = auditor.audit(device_store)
        # ~23% of AOSP 4.4 roots validate nothing (Table 4).
        assert 0.18 <= len(report.removable) / report.total_roots <= 0.28


class TestTamperFindings:
    def test_app_installed_root_is_critical(
        self, auditor, device_store, factory, catalog
    ):
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device_store.add(crazy, source="app:Freedom")
        report = auditor.audit(device_store)
        critical = report.findings_at_least(Severity.CRITICAL)
        assert len(critical) == 1
        assert critical[0].rule == "app-installed-root"
        assert "Freedom" in critical[0].message

    def test_user_installed_root_is_medium(
        self, auditor, device_store, factory, catalog
    ):
        vpn = factory.root_certificate(catalog.by_name("Self-Signed VPN Root 2"))
        device_store.add(vpn, source="user")
        report = auditor.audit(device_store)
        rules = {f.rule for f in report.findings}
        assert "user-installed-root" in rules

    def test_unseen_addition_is_high(self, auditor, device_store, factory, catalog):
        fota = factory.root_certificate(catalog.by_name("Motorola FOTA Root CA"))
        device_store.add(fota, source="firmware")
        report = auditor.audit(device_store)
        unvetted = [f for f in report.findings if f.rule == "unvetted-addition"]
        assert unvetted and unvetted[0].severity is Severity.HIGH

    def test_vetted_addition_not_flagged_high(
        self, auditor, device_store, factory, catalog
    ):
        addtrust = factory.root_certificate(
            catalog.by_name("AddTrust Class 1 CA Root")
        )
        device_store.add(addtrust, source="firmware")
        report = auditor.audit(device_store)
        assert not [
            f
            for f in report.findings
            if f.rule == "unvetted-addition"
            and f.certificate == addtrust
        ]

    def test_missing_roots_flagged(self, auditor, device_store):
        victim = next(iter(device_store))
        device_store.remove(victim)
        report = auditor.audit(device_store)
        assert report.missing == 1
        assert any(f.rule == "missing-reference-roots" for f in report.findings)

    def test_special_purpose_without_constraints(
        self, auditor, device_store, factory, catalog
    ):
        supl = factory.root_certificate(
            catalog.by_name("Motorola SUPL Server Root CA")
        )
        device_store.add(supl, source="firmware")
        report = auditor.audit(device_store)
        assert any(
            f.rule == "unconstrained-special-purpose" for f in report.findings
        )


class TestPolicy:
    def test_policy_switches_off_rules(self, platform_stores, device_store, factory, catalog):
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device_store.add(crazy, source="app:Freedom")
        lax = AuditPolicy(
            flag_non_system_sources=False,
            flag_unvetted_additions=False,
            flag_expired_anchors=False,
            flag_unconstrained_special_purpose=False,
        )
        auditor = StoreAuditor(platform_stores.aosp["4.4"], policy=lax)
        report = auditor.audit(device_store)
        assert report.findings == []

    def test_special_purpose_heuristic(self):
        policy = default_policy()
        assert policy.looks_special_purpose("CN=Motorola FOTA Root CA")
        assert policy.looks_special_purpose("CN=Venezuelan National CA")
        assert not policy.looks_special_purpose("CN=VeriSign Class 3 Root")


class TestReportRendering:
    def test_render_contains_findings(self, auditor, device_store, factory, catalog):
        crazy = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device_store.add(crazy, source="app:Freedom")
        text = auditor.audit(device_store).render()
        assert "CRITICAL" in text
        assert "CRAZY HOUSE" in text

    def test_min_severity_filter(self, auditor, device_store):
        text = auditor.audit(device_store).render(min_severity=Severity.HIGH)
        assert "expired-anchor" not in text

    def test_clean_report_severity(self, platform_stores):
        auditor = StoreAuditor(
            platform_stores.aosp["4.1"],
            policy=AuditPolicy(flag_expired_anchors=False),
        )
        report = auditor.audit(platform_stores.aosp["4.1"].copy("x"))
        assert report.max_severity is Severity.INFO
        assert report.findings == []
