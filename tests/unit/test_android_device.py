"""Unit tests for devices, firmware and apps."""

import pytest

from repro.android import (
    AndroidDevice,
    DeviceSpec,
    FirmwareBuilder,
    FreedomLikeApp,
    VpnInterceptorApp,
)
from repro.android.apps import PERM_VPN, App
from repro.rootstore.store import StorePermissionError


@pytest.fixture(scope="module")
def firmware(factory, catalog):
    return FirmwareBuilder(factory, catalog)


def spec(**overrides) -> DeviceSpec:
    defaults = dict(
        manufacturer="SAMSUNG",
        model="Galaxy SIV",
        os_version="4.2",
        operator="T-MOBILE(US)",
        country="US",
    )
    defaults.update(overrides)
    return DeviceSpec(**defaults)


class TestFirmware:
    def test_branded_device_has_vendor_additions(self, firmware):
        device = firmware.provision(spec(), branded=True)
        base = firmware.aosp.store_for("4.2")
        assert len(device.store) > len(base)

    def test_unbranded_device_is_stock(self, firmware):
        device = firmware.provision(spec(), branded=False)
        assert len(device.store) == len(firmware.aosp.store_for("4.2"))

    def test_nexus_is_always_stock(self, firmware):
        device = firmware.provision(
            spec(manufacturer="LG", model="Nexus 4", os_version="4.4"), branded=True
        )
        assert len(device.store) == 150

    def test_operator_overlay(self, firmware):
        """§5.1: CertiSign certs only on Motorola 4.1 Verizon firmware."""
        verizon = firmware.vendor_cert_names(
            spec(manufacturer="MOTOROLA", model="Droid RAZR HD",
                 os_version="4.1", operator="VERIZON(US)")
        )
        tmobile = firmware.vendor_cert_names(
            spec(manufacturer="MOTOROLA", model="Droid RAZR HD",
                 os_version="4.1", operator="T-MOBILE(US)")
        )
        assert "Certisign AC1S" in verizon
        assert "Certisign AC1S" not in tmobile
        # FOTA/SUPL certs ride on every Motorola firmware.
        assert "Motorola FOTA Root CA" in tmobile

    def test_samsung_43_extended_over_41(self, firmware):
        """§5.1 fn3: Samsung 4.3/4.4 stores are extended vs 4.1/4.2."""
        v41 = firmware.vendor_cert_names(spec(os_version="4.1"))
        v43 = firmware.vendor_cert_names(spec(os_version="4.3"))
        assert len(v43) > len(v41)

    def test_htc_over_40_additions(self, firmware):
        """Figure 1: HTC 4.1 devices add >40 certificates."""
        names = firmware.vendor_cert_names(
            spec(manufacturer="HTC", model="One X", os_version="4.1")
        )
        assert len(names) > 40

    def test_image_cache_reused(self, firmware):
        a = firmware.build_image(spec())
        b = firmware.build_image(spec())
        assert a is b

    def test_devices_share_store_until_mutation(self, firmware):
        a = firmware.provision(spec(), branded=True, device_id="a")
        b = firmware.provision(spec(), branded=True, device_id="b")
        assert a.store is b.store
        a.user_disable_certificate(next(iter(a.store)))
        assert a.store is not b.store


class TestDeviceStoreAccess:
    def test_user_can_add(self, firmware, factory, catalog):
        device = firmware.provision(spec(), branded=False)
        certificate = factory.root_certificate(
            catalog.by_name("Self-Signed VPN Root 1")
        )
        before = len(device.store)
        device.user_add_certificate(certificate)
        assert len(device.store) == before + 1
        assert device.store.entry_for(certificate).source == "user"

    def test_user_can_disable(self, firmware):
        device = firmware.provision(spec(), branded=False)
        target = next(iter(device.store))
        assert device.user_disable_certificate(target)
        assert target not in set(
            device.store.certificates()
        )

    def test_app_needs_root(self, firmware, factory, catalog):
        device = firmware.provision(spec(), branded=False, rooted=False)
        certificate = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        with pytest.raises(StorePermissionError):
            device.app_add_certificate(certificate, "Freedom")

    def test_rooted_app_can_add_and_remove(self, firmware, factory, catalog):
        device = firmware.provision(spec(), branded=False, rooted=True)
        certificate = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.app_add_certificate(certificate, "Freedom")
        assert certificate in device.store
        assert device.app_remove_certificate(certificate, "Freedom")
        assert certificate not in device.store

    def test_mutation_does_not_leak_to_firmware_image(self, firmware, factory, catalog):
        image_store = firmware.build_image(spec()).store
        before = len(image_store)
        device = firmware.provision(spec(), branded=True, rooted=True)
        certificate = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.app_add_certificate(certificate, "Freedom")
        assert len(image_store) == before


class TestApps:
    def test_freedom_requires_root(self, firmware, factory, catalog):
        device = firmware.provision(spec(), branded=False, rooted=False)
        app = FreedomLikeApp(
            ca_certificate=factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        )
        with pytest.raises(PermissionError):
            device.install_app(app)

    def test_freedom_installs_ca_silently(self, firmware, factory, catalog):
        device = firmware.provision(spec(), branded=False, rooted=True)
        certificate = factory.root_certificate(catalog.by_name("CRAZY HOUSE"))
        device.install_app(FreedomLikeApp(ca_certificate=certificate))
        assert certificate in device.store
        assert device.store.entry_for(certificate).source == "app:Freedom"

    def test_freedom_unconfigured_rejected(self, firmware):
        device = firmware.provision(spec(), branded=False, rooted=True)
        with pytest.raises(ValueError):
            device.install_app(FreedomLikeApp())

    def test_vpn_app_no_root_no_certificate(self, firmware):
        """§7: the interceptor needs neither root nor a store change."""
        device = firmware.provision(spec(), branded=False, rooted=False)
        before = len(device.store)
        app = VpnInterceptorApp()
        device.install_app(app)
        assert device.proxy is app.proxy
        assert len(device.store) == before

    def test_vpn_app_permissions(self):
        app = VpnInterceptorApp()
        assert PERM_VPN in app.permissions
        assert len(app.overreaching_permissions) >= 5

    def test_benign_app_does_nothing(self, firmware):
        device = firmware.provision(spec(), branded=False)
        device.install_app(App(name="Calculator"))
        assert device.proxy is None
        assert device.app_names == ["Calculator"]
