"""Tests for the §5.2 geography/roaming analysis."""

import pytest

from repro.analysis.geography import certificate_footprints, detect_roaming
from repro.analysis.sessions import SessionDiffer
from repro.android.population import PopulationConfig, PopulationGenerator
from repro.netalyzr import collect_dataset


@pytest.fixture(scope="module")
def diffs(factory, catalog, platform_stores):
    config = PopulationConfig(seed="geo-tests", scale=0.1, roaming_fraction=0.08)
    population = PopulationGenerator(config, factory, catalog).generate()
    dataset = collect_dataset(population, factory, catalog)
    return SessionDiffer(platform_stores.aosp).diff_all(dataset)


class TestFootprints:
    def test_footprints_cover_extras(self, diffs):
        footprints = certificate_footprints(diffs)
        assert footprints
        labels = {f.label for f in footprints}
        assert "AddTrust Class 1 CA Root" in labels

    def test_cfca_country_spread(self, diffs):
        """§5.2: CFCA roots appear across many countries."""
        footprints = {f.label: f for f in certificate_footprints(diffs)}
        cfca = footprints.get("CFCA Root CA")
        assert cfca is not None
        assert cfca.country_spread >= 2

    def test_session_counts_positive(self, diffs):
        for footprint in certificate_footprints(diffs):
            assert footprint.session_count >= 1
            assert footprint.countries
            assert footprint.attached_operators

    def test_min_sessions_filter(self, diffs):
        all_fp = certificate_footprints(diffs)
        filtered = certificate_footprints(diffs, min_sessions=10)
        assert len(filtered) <= len(all_fp)
        assert all(f.session_count >= 10 for f in filtered)


class TestRoaming:
    def test_roamers_detected(self, diffs, catalog):
        """With 8% roamers, some operator root shows up on a foreign
        network — the §5.2 Telefonica-on-Claro signature."""
        findings = detect_roaming(diffs, catalog)
        assert findings
        for finding in findings:
            assert finding.attached_operator != finding.issuing_operator
            assert finding.session_count >= 1

    def test_no_roaming_no_findings(self, factory, catalog, platform_stores):
        config = PopulationConfig(
            seed="geo-no-roam", scale=0.04, roaming_fraction=0.0
        )
        population = PopulationGenerator(config, factory, catalog).generate()
        dataset = collect_dataset(population, factory, catalog)
        diffs = SessionDiffer(platform_stores.aosp).diff_all(dataset)
        assert detect_roaming(diffs, catalog) == []
