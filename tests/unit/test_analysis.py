"""Unit tests for the analysis building blocks."""

import pytest

from repro.analysis.classify import PresenceClassifier
from repro.analysis.ecdf import (
    cumulative_coverage,
    ecdf_points,
    fraction_zero,
    knee_index,
)
from repro.analysis.sessions import SessionDiffer, extended_fraction
from repro.netalyzr import NetalyzrClient
from repro.rootstore.catalog import StorePresence


class TestEcdf:
    def test_points_monotone(self):
        points = ecdf_points([0, 0, 5, 2, 9, 2])
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_points_values(self):
        points = dict(ecdf_points([0, 0, 1, 3]))
        assert points[0] == 0.5
        assert points[1] == 0.75
        assert points[3] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf_points([])
        with pytest.raises(ValueError):
            fraction_zero([])

    def test_fraction_zero(self):
        assert fraction_zero([0, 0, 1, 2]) == 0.5
        assert fraction_zero([1, 2]) == 0.0

    def test_cumulative_coverage_greedy(self):
        coverage = cumulative_coverage([1, 10, 5])
        assert coverage == [(1, 10), (2, 15), (3, 16)]

    def test_cumulative_coverage_given_order(self):
        coverage = cumulative_coverage([1, 10, 5], greedy=False)
        assert coverage == [(1, 1), (2, 11), (3, 16)]

    def test_knee_index(self):
        coverage = cumulative_coverage([100, 10, 1, 1, 1])
        assert knee_index(coverage, threshold=0.95) == 2

    def test_knee_of_all_zero(self):
        assert knee_index(cumulative_coverage([0, 0])) == 0

    def test_greedy_dominates_any_order(self):
        counts = [7, 0, 3, 12, 1, 0, 5]
        greedy = cumulative_coverage(counts, greedy=True)
        given = cumulative_coverage(counts, greedy=False)
        assert all(g[1] >= o[1] for g, o in zip(greedy, given))


class TestSessionDiffer:
    @pytest.fixture(scope="class")
    def differ(self, platform_stores):
        return SessionDiffer(platform_stores.aosp)

    @pytest.fixture(scope="class")
    def client(self, factory, catalog):
        return NetalyzrClient(factory, catalog, probe_domains=False)

    def test_stock_device_diff(self, differ, client, factory, catalog):
        from repro.android import DeviceSpec, FirmwareBuilder

        firmware = FirmwareBuilder(factory, catalog)
        device = firmware.provision(
            DeviceSpec("LG", "Nexus 5", "4.4", "WIFI"), branded=False
        )
        diff = differ.diff(client.run_session(device, 1))
        assert not diff.is_extended
        assert diff.aosp_count == 150
        assert diff.missing_count == 0

    def test_branded_device_diff(self, differ, client, factory, catalog):
        from repro.android import DeviceSpec, FirmwareBuilder

        firmware = FirmwareBuilder(factory, catalog)
        device = firmware.provision(
            DeviceSpec("HTC", "One X", "4.1", "AT&T(US)"), branded=True
        )
        diff = differ.diff(client.run_session(device, 2))
        assert diff.is_extended
        assert diff.aosp_count == 139
        assert diff.additional_count > 40

    def test_disabled_cert_counts_missing(self, differ, client, factory, catalog):
        from repro.android import DeviceSpec, FirmwareBuilder

        firmware = FirmwareBuilder(factory, catalog)
        device = firmware.provision(
            DeviceSpec("LG", "Nexus 5", "4.4", "WIFI"), branded=False
        )
        device.user_disable_certificate(next(iter(device.store)))
        diff = differ.diff(client.run_session(device, 3))
        assert diff.missing_count == 1

    def test_unknown_version_rejected(self, differ, client, factory, catalog):
        from repro.analysis.errors import AnalysisError, UnknownVersionError
        from repro.android import DeviceSpec, FirmwareBuilder

        firmware = FirmwareBuilder(factory, catalog)
        device = firmware.provision(
            DeviceSpec("LG", "Nexus 5", "4.4", "WIFI"), branded=False
        )
        session = client.run_session(device, 4)
        session.os_version = "9.0"
        with pytest.raises(UnknownVersionError) as excinfo:
            differ.diff(session)
        assert excinfo.value.version == "9.0"
        # typed for bulk handling, but legacy KeyError handlers still work
        assert isinstance(excinfo.value, AnalysisError)
        assert isinstance(excinfo.value, KeyError)
        assert "9.0" in str(excinfo.value)

    def test_extended_fraction_empty_rejected(self):
        with pytest.raises(ValueError):
            extended_fraction([])


class TestClassifier:
    @pytest.fixture(scope="class")
    def classifier(self, platform_stores, notary):
        return PresenceClassifier(
            platform_stores.mozilla, platform_stores.ios7, notary
        )

    def test_both_stores(self, classifier, factory, catalog):
        profile = catalog.by_name("AddTrust Class 1 CA Root")
        result = classifier.classify(factory.root_certificate(profile))
        assert result.presence is StorePresence.MOZILLA_AND_IOS7

    def test_ios7_only(self, classifier, factory, catalog):
        profile = catalog.by_name("DoD CLASS 3 Root CA")
        result = classifier.classify(factory.root_certificate(profile))
        assert result.presence is StorePresence.IOS7_ONLY

    def test_android_only_seen(self, classifier, factory, catalog):
        profile = catalog.by_name("Entrust.net CA")
        result = classifier.classify(factory.root_certificate(profile))
        assert result.presence is StorePresence.ANDROID_ONLY
        assert result.recorded_by_notary

    def test_not_recorded(self, classifier, factory, catalog):
        profile = catalog.by_name("Motorola FOTA Root CA")
        result = classifier.classify(factory.root_certificate(profile))
        assert result.presence is StorePresence.NOT_RECORDED

    def test_reissued_twin_classified_as_mozilla_member(
        self, classifier, factory, catalog
    ):
        """§4.2: the AOSP copy of a re-issued root must still count as
        present in Mozilla (equivalence, not byte identity)."""
        profile = next(p for p in catalog.core if p.reissued_in_mozilla)
        canonical = factory.root_certificate(profile)
        assert classifier.classify(canonical).in_mozilla

    def test_classify_unique_dedups(self, classifier, factory, catalog):
        cert = factory.root_certificate(catalog.by_name("Entrust.net CA"))
        out = classifier.classify_unique([cert, cert, cert])
        assert len(out) == 1

    def test_presence_distribution_sums_to_one(self, classifier, factory, catalog):
        certs = [
            factory.root_certificate(p) for p in catalog.extras[:20]
        ]
        distribution = classifier.presence_distribution(certs)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9
